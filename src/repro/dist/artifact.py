"""Per-cell result artifacts: the JSONL files both transports share.

After simulating one gateway cell, a worker serializes everything the
coordinator needs from it — per-node metrics, the monthly degradation
series, linear rates, the (already sampled/capped) packet log, border
intents — into one JSONL artifact.  Local pipe workers write the file
directly into the coordinator's spill directory; remote workers write it
locally and stream its lines over the socket, where the coordinator
spills them verbatim to the same path.  Either way the bytes on disk are
identical, which is what makes merged results provably independent of
where a cell ran.

The coordinator's finalize step loads artifacts back one cell at a time
(:func:`load_cell_artifact`) and merges lazily, so peak coordinator
memory is one cell plus the merged (sampled, capacity-capped) log —
never the sum of all cells' packet rows.

Layout (one JSON object per line, ``kind`` first so skimming readers can
dispatch on a string prefix)::

    {"kind": "meta", "cell": 3, "round": 1, "events": N, "peak_heap": N}
    {"kind": "node", "row": [...NodeMetrics fields in order...]}
    {"kind": "monthly", "row": [month, max_degradation, mean_degradation]}
    {"kind": "rate", "row": [node_id, rate]}
    {"kind": "log", "generated": …, …, "count": stored-row-count}
    {"kind": "pkt", "rows": [[...PacketRecord fields...], …]}
    {"kind": "intent", "w": [...], "n": [...], "o": [...]}
    {"kind": "end", "lines": N}

Floats round-trip exactly (``json`` emits shortest-``repr`` doubles and
accepts ``NaN``); ``Counter`` fields become sorted ``[key, count]``
pairs.  The ``end`` marker carries the line count, so a torn or
truncated artifact is always detectable.
"""

from __future__ import annotations

import dataclasses
import json
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

import numpy as np

from ..exceptions import DistProtocolError
from ..ioutil import atomic_write_text
from ..sim.metrics import NodeMetrics
from ..sim.mesoscopic import MonthlySample
from ..sim.packetlog import PacketLog, PacketRecord

#: Packet rows batched per ``pkt`` line / intents per ``intent`` line.
_ROWS_PER_LINE = 512
_INTENTS_PER_LINE = 8192

_NODE_FIELDS = tuple(f.name for f in dataclasses.fields(NodeMetrics))
_PACKET_FIELDS = tuple(f.name for f in dataclasses.fields(PacketRecord))
_LOG_COUNTERS = (
    "generated",
    "delivered",
    "attempts",
    "energy_drops",
    "unsampled",
    "dropped",
)


@dataclass
class CellArtifact:
    """One simulated cell, in coordinator-merge form."""

    cell_index: int
    round_no: int
    events_executed: int
    peak_heap: int
    metrics: Dict[int, NodeMetrics]
    monthly: List[MonthlySample]
    linear_rates: Dict[int, float]
    packet_log: Optional[PacketLog]
    #: (absolute_window, node_id, offset | NaN) announcements as arrays;
    #: None when the cell exported nothing.
    intent_windows: Optional[np.ndarray] = None
    intent_nodes: Optional[np.ndarray] = None
    intent_offsets: Optional[np.ndarray] = None


def _dump(obj: Dict[str, object]) -> str:
    return json.dumps(obj, separators=(",", ":"))


def _node_row(metrics: NodeMetrics) -> List[object]:
    row: List[object] = []
    for name in _NODE_FIELDS:
        value = getattr(metrics, name)
        if isinstance(value, Counter):
            value = [[int(k), int(v)] for k, v in sorted(value.items())]
        row.append(value)
    return row


def _node_from_row(row: List[object]) -> NodeMetrics:
    kwargs = dict(zip(_NODE_FIELDS, row))
    kwargs["window_selections"] = Counter(
        {int(k): int(v) for k, v in kwargs["window_selections"]}
    )
    return NodeMetrics(**kwargs)


def artifact_lines(artifact: CellArtifact) -> Iterator[str]:
    """The artifact's JSONL lines, in canonical order (no newlines)."""
    yield _dump(
        {
            "kind": "meta",
            "cell": artifact.cell_index,
            "round": artifact.round_no,
            "events": artifact.events_executed,
            "peak_heap": artifact.peak_heap,
        }
    )
    for node_id in sorted(artifact.metrics):
        yield _dump({"kind": "node", "row": _node_row(artifact.metrics[node_id])})
    for sample in artifact.monthly:
        yield _dump(
            {
                "kind": "monthly",
                "row": [
                    sample.month,
                    sample.max_degradation,
                    sample.mean_degradation,
                ],
            }
        )
    for node_id in sorted(artifact.linear_rates):
        yield _dump(
            {"kind": "rate", "row": [node_id, artifact.linear_rates[node_id]]}
        )
    log = artifact.packet_log
    if log is not None:
        header: Dict[str, object] = {"kind": "log"}
        for name in _LOG_COUNTERS:
            header[name] = getattr(log, name)
        header["count"] = len(log)
        yield _dump(header)
        batch: List[List[object]] = []
        for record in log:
            batch.append([getattr(record, name) for name in _PACKET_FIELDS])
            if len(batch) >= _ROWS_PER_LINE:
                yield _dump({"kind": "pkt", "rows": batch})
                batch = []
        if batch:
            yield _dump({"kind": "pkt", "rows": batch})
    if artifact.intent_windows is not None:
        total = int(artifact.intent_windows.size)
        for start in range(0, total, _INTENTS_PER_LINE):
            stop = min(start + _INTENTS_PER_LINE, total)
            yield _dump(
                {
                    "kind": "intent",
                    "w": [int(v) for v in artifact.intent_windows[start:stop]],
                    "n": [int(v) for v in artifact.intent_nodes[start:stop]],
                    "o": [float(v) for v in artifact.intent_offsets[start:stop]],
                }
            )


def write_cell_artifact(path: str, artifact: CellArtifact) -> None:
    """Write the artifact atomically (``end`` marker written last)."""
    lines = list(artifact_lines(artifact))
    lines.append(_dump({"kind": "end", "lines": len(lines)}))
    atomic_write_text(path, "\n".join(lines) + "\n")


def artifact_complete(path: str) -> bool:
    """Whether ``path`` holds a complete artifact (valid ``end`` marker)."""
    try:
        lines = _read_lines(path)
    except (OSError, DistProtocolError):
        return False
    if not lines or not lines[-1].startswith('{"kind":"end"'):
        return False
    try:
        marker = json.loads(lines[-1])
    except json.JSONDecodeError:
        return False
    return marker.get("lines") == len(lines) - 1


def _read_lines(path: str) -> List[str]:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read().splitlines()


def load_cell_artifact(path: str, skim: bool = False) -> CellArtifact:
    """Parse one artifact back; raises on truncated/torn files.

    With ``skim=True`` the bulky ``node``/``monthly``/``rate``/``pkt``
    lines are skipped (prefix dispatch, no JSON parse) — what a worker
    needs to re-report an already-finished cell without reloading its
    packet rows.
    """
    lines = _read_lines(path)
    if not lines or not lines[-1].startswith('{"kind":"end"'):
        raise DistProtocolError(f"artifact {path!r} has no end marker")
    marker = json.loads(lines[-1])
    if marker.get("lines") != len(lines) - 1:
        raise DistProtocolError(
            f"artifact {path!r} is truncated: end marker says "
            f"{marker.get('lines')} lines, found {len(lines) - 1}"
        )
    meta: Optional[Dict[str, object]] = None
    metrics: Dict[int, NodeMetrics] = {}
    monthly: List[MonthlySample] = []
    rates: Dict[int, float] = {}
    log: Optional[PacketLog] = None
    intents_w: List[List[int]] = []
    intents_n: List[List[int]] = []
    intents_o: List[List[float]] = []
    skippable = ('{"kind":"node"', '{"kind":"monthly"', '{"kind":"rate"',
                 '{"kind":"pkt"')
    for line in lines[:-1]:
        if skim and line.startswith(skippable):
            continue
        doc = json.loads(line)
        kind = doc.get("kind")
        if kind == "meta":
            meta = doc
        elif kind == "node":
            node = _node_from_row(doc["row"])
            metrics[node.node_id] = node
        elif kind == "monthly":
            month, max_deg, mean_deg = doc["row"]
            monthly.append(
                MonthlySample(
                    month=int(month),
                    max_degradation=max_deg,
                    mean_degradation=mean_deg,
                )
            )
        elif kind == "rate":
            node_id, rate = doc["row"]
            rates[int(node_id)] = rate
        elif kind == "log":
            # Capacity only matters for the *target* of a merge; give
            # the reconstructed source room for every stored row.
            log = PacketLog(capacity=max(1, int(doc["count"])))
            for name in _LOG_COUNTERS:
                setattr(log, name, doc[name])
        elif kind == "pkt":
            if log is None:
                raise DistProtocolError(
                    f"artifact {path!r} has pkt rows before the log header"
                )
            log._records.extend(
                PacketRecord(**dict(zip(_PACKET_FIELDS, row)))
                for row in doc["rows"]
            )
        elif kind == "intent":
            intents_w.append(doc["w"])
            intents_n.append(doc["n"])
            intents_o.append(doc["o"])
        else:
            raise DistProtocolError(
                f"artifact {path!r} has an unknown line kind {kind!r}"
            )
    if meta is None:
        raise DistProtocolError(f"artifact {path!r} has no meta line")
    artifact = CellArtifact(
        cell_index=int(meta["cell"]),
        round_no=int(meta["round"]),
        events_executed=int(meta["events"]),
        peak_heap=int(meta["peak_heap"]),
        metrics=metrics,
        monthly=monthly,
        linear_rates=rates,
        packet_log=log,
    )
    if intents_w:
        artifact.intent_windows = np.array(
            [v for chunk in intents_w for v in chunk], dtype=np.int64
        )
        artifact.intent_nodes = np.array(
            [v for chunk in intents_n for v in chunk], dtype=np.int64
        )
        artifact.intent_offsets = np.array(
            [v for chunk in intents_o for v in chunk], dtype=np.float64
        )
    return artifact


def iter_artifact_lines(path: str) -> Iterator[str]:
    """Yield the artifact's raw lines (for streaming over the wire)."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            yield line.rstrip("\n")
