"""The ``repro worker`` agent: connects out, simulates leased cells.

A worker is started on any host that can reach the coordinator::

    repro worker --connect coordinator-host:7070 --slots 4

It dials the coordinator, performs the version/config-hash handshake,
then sits in an asyncio loop: heartbeats every couple of seconds, and
for every ``lease`` frame spawns a subprocess that simulates the leased
cell through the exact same code path as a local pipe worker
(:func:`repro.sim.sharded._shard_worker_main` on a single-cell shard
job).  The finished cell's artifact is written to a worker-local temp
file, then streamed back line-by-line as ``cell_chunk`` frames and
sealed with ``cell_done`` — the coordinator spills the stream to disk
verbatim, so the artifact bytes are identical to a local run's.

Failure behaviour mirrors a real crash: if the lease subprocess dies
from SIGKILL (including the deterministic ``crash_after_saves`` crash
hook used by the fault tests), the whole agent exits immediately with
a non-zero status, taking its socket down — the coordinator sees EOF
and re-dispatches the cell.  Other subprocess failures are reported as
``cell_done`` with ``status="failed"`` and the agent keeps serving.

Checkpoints are written to the lease's checkpoint directory when one is
configured.  On a shared filesystem (or a single host) a re-dispatched
cell therefore resumes from the newest snapshot the dead worker left
behind; without shared storage it re-runs from scratch — same results,
more wall clock.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import shutil
import signal
import sys
import tempfile
import time
from typing import Dict, Optional

from ..exceptions import DistProtocolError
from .artifact import iter_artifact_lines
from .protocol import (
    CHUNK_BYTES,
    PROTOCOL_VERSION,
    read_frame,
    unpack_blob,
    write_frame,
)

#: Default heartbeat cadence; the coordinator's staleness timeout is
#: several multiples of this.
DEFAULT_HEARTBEAT_S = 2.0

#: How long a disconnected worker keeps retrying the coordinator before
#: giving up (fresh connections reset the window).
DEFAULT_RECONNECT_FOR_S = 30.0


def _lease_job(payload: Dict, spill_path: str):
    """Build the single-cell shard job a lease describes."""
    from ..sim.sharded import ShardJob

    cell = payload["cell"]
    return ShardJob(
        index=cell,
        round_no=payload["round"],
        cells=[cell],
        placements_by_cell={cell: payload["placements"]},
        export_by_cell={cell: payload["export"]},
        foreign_by_cell={cell: payload["foreign"]},
        config=payload["config"],
        spill_by_cell={cell: spill_path},
        ckpt_by_cell={cell: payload["ckpt_dir"]},
    )


class _Agent:
    """One connection's worth of worker state."""

    def __init__(
        self,
        host: str,
        port: int,
        name: str,
        slots: int,
        heartbeat_s: float,
        expect_config_hash: Optional[str],
    ) -> None:
        self.host = host
        self.port = port
        self.name = name
        self.slots = slots
        self.heartbeat_s = heartbeat_s
        self.expect_config_hash = expect_config_hash
        self.writer: Optional[asyncio.StreamWriter] = None
        self.write_lock = asyncio.Lock()
        self.tmp_root = tempfile.mkdtemp(prefix="repro-worker-")
        self.lease_tasks: set = set()
        #: Monotonic time of the last successful handshake; lets the
        #: reconnect window reset after every healthy connection.
        self.last_welcome = 0.0

    async def send(self, payload: Dict) -> None:
        async with self.write_lock:
            await write_frame(self.writer, payload)

    async def serve(self) -> int:
        """One connection: handshake, then heartbeats + leases.

        Returns the process exit code; raises ``OSError`` (or
        :class:`DistProtocolError`) when the connection drops and a
        reconnect should be attempted.
        """
        reader, writer = await asyncio.open_connection(self.host, self.port)
        self.writer = writer
        try:
            await self.send(
                {
                    "type": "hello",
                    "version": PROTOCOL_VERSION,
                    "name": self.name,
                    "slots": self.slots,
                    "pid": os.getpid(),
                    "config_hash": self.expect_config_hash,
                }
            )
            frame = await read_frame(reader)
            if frame is None:
                raise DistProtocolError("coordinator closed during handshake")
            if frame.get("type") == "reject":
                print(
                    f"repro worker: rejected by coordinator: "
                    f"{frame.get('reason')}",
                    file=sys.stderr,
                )
                return 1
            if frame.get("type") != "welcome":
                raise DistProtocolError(
                    f"expected welcome, got {frame.get('type')!r}"
                )
            run_hash = frame.get("config_hash")
            if (
                self.expect_config_hash is not None
                and run_hash is not None
                and run_hash != self.expect_config_hash
            ):
                print(
                    f"repro worker: coordinator runs config {run_hash}, "
                    f"expected {self.expect_config_hash}",
                    file=sys.stderr,
                )
                return 1
            self.last_welcome = time.monotonic()
            heartbeat = asyncio.ensure_future(self._heartbeat_loop())
            try:
                while True:
                    frame = await read_frame(reader)
                    if frame is None:
                        raise DistProtocolError(
                            "coordinator closed the connection"
                        )
                    kind = frame.get("type")
                    if kind == "shutdown":
                        return 0
                    if kind == "lease":
                        task = asyncio.ensure_future(self._run_lease(frame))
                        self.lease_tasks.add(task)
                        task.add_done_callback(self.lease_tasks.discard)
                    # Unknown frame types are ignored for forward
                    # compatibility within one protocol version.
            finally:
                heartbeat.cancel()
                for task in list(self.lease_tasks):
                    task.cancel()
        finally:
            writer.close()

    async def _heartbeat_loop(self) -> None:
        try:
            while True:
                await asyncio.sleep(self.heartbeat_s)
                await self.send({"type": "heartbeat", "name": self.name})
        except OSError:
            return  # connection gone; the read loop reports it

    async def _run_lease(self, frame: Dict) -> None:
        try:
            await self._run_lease_inner(frame)
        except OSError:
            pass  # connection gone mid-stream; coordinator re-leases

    async def _run_lease_inner(self, frame: Dict) -> None:
        lease_id = frame.get("lease_id")
        try:
            payload = unpack_blob(frame["blob"])
        except (KeyError, DistProtocolError) as exc:
            await self.send(
                {
                    "type": "cell_done",
                    "lease_id": lease_id,
                    "status": "failed",
                    "error": f"undecodable lease: {exc}",
                }
            )
            return
        spill_path = os.path.join(
            self.tmp_root, f"{lease_id}.jsonl"
        )
        error = await self._simulate(payload, spill_path)
        if error is not None:
            await self.send(
                {
                    "type": "cell_done",
                    "lease_id": lease_id,
                    "status": "failed",
                    "error": error,
                }
            )
            return
        try:
            await self._stream_artifact(lease_id, spill_path)
        finally:
            try:
                os.remove(spill_path)
            except OSError:
                pass

    async def _simulate(
        self, payload: Dict, spill_path: str
    ) -> Optional[str]:
        """Run the leased cell in a subprocess; None on success."""
        from ..sim.sharded import _shard_worker_main

        loop = asyncio.get_running_loop()
        context = multiprocessing.get_context()
        parent_conn, child_conn = context.Pipe(duplex=False)
        process = context.Process(
            target=_shard_worker_main,
            args=(
                child_conn,
                _lease_job(payload, spill_path),
                "meso",
                None,  # run_dir: per-cell dirs travel inside the job
                payload["config"].checkpoint_every_s,
                None,  # resume_from: cells self-resume
                payload.get("crash_after_saves"),
                None,  # trace_dir
            ),
        )
        process.start()
        child_conn.close()
        try:
            message = await loop.run_in_executor(None, parent_conn.recv)
        except EOFError:
            message = None
        finally:
            parent_conn.close()
        await loop.run_in_executor(None, process.join)
        if message is None:
            # The subprocess died without reporting.  SIGKILL means a
            # crash (possibly the deterministic crash hook): take the
            # whole agent down like a real worker loss, so the
            # coordinator re-dispatches from checkpoints.
            if process.exitcode == -signal.SIGKILL:
                print(
                    "repro worker: lease subprocess killed; exiting",
                    file=sys.stderr,
                    flush=True,
                )
                os._exit(9)
            return f"lease subprocess died with exit code {process.exitcode}"
        kind, value = message
        if kind == "record":
            record = value
            if record.ok:
                return None
            return record.error or f"cell finished with status {record.status}"
        if kind == "interrupted":
            return "lease subprocess interrupted by signal"
        return f"unexpected worker message {kind!r}"

    async def _stream_artifact(self, lease_id: str, path: str) -> None:
        """Ship the artifact as chunked frames, then seal the cell."""
        batch = []
        batch_bytes = 0
        for line in iter_artifact_lines(path):
            batch.append(line)
            batch_bytes += len(line) + 1
            if batch_bytes >= CHUNK_BYTES:
                await self.send(
                    {
                        "type": "cell_chunk",
                        "lease_id": lease_id,
                        "lines": batch,
                    }
                )
                batch = []
                batch_bytes = 0
        if batch:
            await self.send(
                {"type": "cell_chunk", "lease_id": lease_id, "lines": batch}
            )
        await self.send(
            {"type": "cell_done", "lease_id": lease_id, "status": "ok"}
        )


def run_worker(
    connect: str,
    name: Optional[str] = None,
    slots: int = 1,
    heartbeat_s: float = DEFAULT_HEARTBEAT_S,
    reconnect_for_s: float = DEFAULT_RECONNECT_FOR_S,
    expect_config_hash: Optional[str] = None,
) -> int:
    """Run a worker agent until the coordinator shuts it down.

    ``connect`` is ``host:port``.  Returns the process exit code:
    0 after an orderly shutdown frame, 1 on handshake rejection or when
    the coordinator stays unreachable for ``reconnect_for_s`` seconds.
    """
    host, _, port_text = connect.rpartition(":")
    if not host or not port_text.isdigit():
        raise ValueError(f"--connect expects host:port, got {connect!r}")
    port = int(port_text)
    agent = _Agent(
        host=host,
        port=port,
        name=name or f"{os.uname().nodename}-{os.getpid()}",
        slots=max(1, slots),
        heartbeat_s=heartbeat_s,
        expect_config_hash=expect_config_hash,
    )
    loop = asyncio.new_event_loop()
    try:
        window_start = time.monotonic()
        while True:
            try:
                return loop.run_until_complete(agent.serve())
            except (OSError, DistProtocolError) as exc:
                if agent.last_welcome > window_start:
                    window_start = agent.last_welcome
                if time.monotonic() - window_start > reconnect_for_s:
                    print(
                        f"repro worker: giving up on {connect}: {exc}",
                        file=sys.stderr,
                    )
                    return 1
                time.sleep(1.0)
    finally:
        loop.close()
        shutil.rmtree(agent.tmp_root, ignore_errors=True)
