"""Minimal discrete-event simulation kernel.

A deliberately small heapq-based engine in the style of NS-3's scheduler:
events are ``(time, priority, sequence, callback)`` tuples; ties break by
priority then insertion order, making runs fully deterministic for a
given seed.  This kernel underpins the exact (testbed-scale) simulator;
the multi-year mesoscopic runner bypasses it for speed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..exceptions import SchedulingError

EventCallback = Callable[[], None]


@dataclass(order=True)
class _ScheduledEvent:
    time_s: float
    priority: int
    sequence: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Opaque handle allowing a scheduled event to be cancelled."""

    __slots__ = ("_event",)

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the event's callback from running (idempotent)."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled

    @property
    def time_s(self) -> float:
        """Scheduled absolute time of the event."""
        return self._event.time_s


class EventQueue:
    """The simulation clock and pending-event heap."""

    def __init__(self) -> None:
        self._heap: List[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._now_s = 0.0
        self._running = False
        self._peak_pending = 0

    @property
    def now_s(self) -> float:
        """Current simulation time in seconds."""
        return self._now_s

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    @property
    def peak_pending(self) -> int:
        """High-water mark of queued events (memory-pressure profiling)."""
        return self._peak_pending

    def schedule(
        self, time_s: float, callback: EventCallback, priority: int = 0
    ) -> EventHandle:
        """Schedule ``callback`` at absolute time ``time_s``.

        Lower ``priority`` runs first among same-time events.  Scheduling
        in the past is an error — it would silently reorder causality.
        """
        if time_s < self._now_s:
            raise SchedulingError(
                f"cannot schedule at {time_s:.6f}s; clock is at {self._now_s:.6f}s"
            )
        event = _ScheduledEvent(
            time_s=time_s,
            priority=priority,
            sequence=next(self._sequence),
            callback=callback,
        )
        heapq.heappush(self._heap, event)
        if len(self._heap) > self._peak_pending:
            self._peak_pending = len(self._heap)
        return EventHandle(event)

    def schedule_in(
        self, delay_s: float, callback: EventCallback, priority: int = 0
    ) -> EventHandle:
        """Schedule ``callback`` after a relative delay."""
        if delay_s < 0:
            raise SchedulingError("delay cannot be negative")
        return self.schedule(self._now_s + delay_s, callback, priority)

    def step(self) -> bool:
        """Run the next non-cancelled event; returns False when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now_s = event.time_s
            event.callback()
            return True
        return False

    def run_until(self, end_time_s: float) -> None:
        """Run events up to and including ``end_time_s``; clock ends there."""
        if end_time_s < self._now_s:
            raise SchedulingError("cannot run backwards")
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.time_s > end_time_s:
                break
            self.step()
        self._now_s = max(self._now_s, end_time_s)

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the queue (optionally bounded); returns events executed."""
        executed = 0
        while self.step():
            executed += 1
            if max_events is not None and executed >= max_events:
                break
        return executed
