"""Minimal discrete-event simulation kernel.

A deliberately small heapq-based engine in the style of NS-3's scheduler:
events are ``(time, priority, sequence, payload)`` tuples; ties break by
priority then insertion order, making runs fully deterministic for a
given seed.  This kernel underpins the exact (testbed-scale) simulator;
the multi-year mesoscopic runner bypasses it for speed.

Events come in two flavours:

* **callback events** (:meth:`EventQueue.schedule`) carry an arbitrary
  Python callable — convenient for tests and ad-hoc experiments but not
  snapshotable (closures don't pickle);
* **named events** (:meth:`EventQueue.schedule_event`) carry a
  ``(kind, args)`` pair dispatched through the queue's ``dispatch``
  hook.  The exact engine schedules exclusively through these, which is
  what makes a mid-run event queue checkpointable: the heap pickles as
  plain data and the dispatch hook is re-bound on resume.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..exceptions import CheckpointError, SchedulingError

EventCallback = Callable[[], None]

#: Dispatch hook signature for named events.
EventDispatch = Callable[[str, Tuple[object, ...]], None]


@dataclass(order=True)
class _ScheduledEvent:
    time_s: float
    priority: int
    sequence: int
    callback: Optional[EventCallback] = field(compare=False, default=None)
    kind: Optional[str] = field(compare=False, default=None)
    args: Tuple[object, ...] = field(compare=False, default=())
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Opaque handle allowing a scheduled event to be cancelled."""

    __slots__ = ("_event",)

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the event's callback from running (idempotent)."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled

    @property
    def time_s(self) -> float:
        """Scheduled absolute time of the event."""
        return self._event.time_s


#: Batch dispatch hook: one call handles a same-instant run of events
#: of one kind, receiving the args tuples in exact heap pop order.
EventBatchDispatch = Callable[[str, List[Tuple[object, ...]]], None]


class EventQueue:
    """The simulation clock and pending-event heap."""

    #: Class-level defaults so queues restored from pre-batching
    #: checkpoints (whose pickled state lacks the attributes) still run.
    #: Named-event kinds eligible for batched popping in
    #: :meth:`run_until`: a maximal run of consecutive heap events
    #: sharing ``(time_s, priority, kind)`` is popped in one go and
    #: handed to :attr:`dispatch_batch` as a single call.  Because only
    #: *consecutive* events are grouped, execution order is exactly the
    #: heap order a one-at-a-time drain would produce.
    batch_kinds: frozenset = frozenset()
    #: Batch dispatcher (like :attr:`dispatch`, re-bound on resume).
    dispatch_batch: Optional[EventBatchDispatch] = None

    def __init__(self) -> None:
        self._heap: List[_ScheduledEvent] = []
        self._next_sequence = 0
        self._now_s = 0.0
        self._running = False
        self._peak_pending = 0
        #: Named-event dispatcher; the owning engine assigns this (it is
        #: excluded from pickling and re-bound on resume).
        self.dispatch: Optional[EventDispatch] = None
        self.dispatch_batch = None
        self.batch_kinds = frozenset()

    @property
    def now_s(self) -> float:
        """Current simulation time in seconds."""
        return self._now_s

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    @property
    def peak_pending(self) -> int:
        """High-water mark of queued events (memory-pressure profiling)."""
        return self._peak_pending

    def _push(self, event: _ScheduledEvent) -> EventHandle:
        heapq.heappush(self._heap, event)
        if len(self._heap) > self._peak_pending:
            self._peak_pending = len(self._heap)
        return EventHandle(event)

    def _check_time(self, time_s: float) -> None:
        if time_s < self._now_s:
            raise SchedulingError(
                f"cannot schedule at {time_s:.6f}s; clock is at {self._now_s:.6f}s"
            )

    def schedule(
        self, time_s: float, callback: EventCallback, priority: int = 0
    ) -> EventHandle:
        """Schedule ``callback`` at absolute time ``time_s``.

        Lower ``priority`` runs first among same-time events.  Scheduling
        in the past is an error — it would silently reorder causality.
        """
        self._check_time(time_s)
        event = _ScheduledEvent(
            time_s=time_s,
            priority=priority,
            sequence=self._take_sequence(),
            callback=callback,
        )
        return self._push(event)

    def schedule_event(
        self, time_s: float, kind: str, *args: object, priority: int = 0
    ) -> EventHandle:
        """Schedule a named event dispatched via :attr:`dispatch`.

        Unlike callback events, named events pickle — the exact engine
        uses them exclusively so a mid-run queue can be checkpointed.
        """
        self._check_time(time_s)
        event = _ScheduledEvent(
            time_s=time_s,
            priority=priority,
            sequence=self._take_sequence(),
            kind=kind,
            args=args,
        )
        return self._push(event)

    def _take_sequence(self) -> int:
        sequence = self._next_sequence
        self._next_sequence += 1
        return sequence

    def schedule_in(
        self, delay_s: float, callback: EventCallback, priority: int = 0
    ) -> EventHandle:
        """Schedule ``callback`` after a relative delay."""
        if delay_s < 0:
            raise SchedulingError("delay cannot be negative")
        return self.schedule(self._now_s + delay_s, callback, priority)

    def step(self) -> bool:
        """Run the next non-cancelled event; returns False when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now_s = event.time_s
            if event.kind is not None:
                if self.dispatch is None:
                    raise SchedulingError(
                        f"named event {event.kind!r} queued but no dispatch "
                        f"hook is bound"
                    )
                self.dispatch(event.kind, event.args)
            else:
                event.callback()
            return True
        return False

    def run_until(
        self,
        end_time_s: float,
        stop_check: Optional[Callable[[], bool]] = None,
        stop_every: int = 64,
    ) -> bool:
        """Run events up to and including ``end_time_s``.

        Returns True when the horizon was reached (the clock then rests
        at ``end_time_s``), False when ``stop_check`` asked for an early
        stop — in that case the clock stays at the last executed event
        so the caller can checkpoint a consistent state.
        """
        if end_time_s < self._now_s:
            raise SchedulingError("cannot run backwards")
        executed = 0
        next_check = stop_every
        batch_kinds = self.batch_kinds
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.time_s > end_time_s:
                break
            if (
                head.kind is not None
                and head.kind in batch_kinds
                and self.dispatch_batch is not None
            ):
                executed += self._step_batch(head)
            else:
                self.step()
                executed += 1
            if (
                stop_check is not None
                and executed >= next_check
            ):
                next_check = executed - executed % stop_every + stop_every
                if stop_check():
                    return False
        self._now_s = max(self._now_s, end_time_s)
        return True

    def _step_batch(self, head: _ScheduledEvent) -> int:
        """Pop and dispatch one maximal same-``(time, priority, kind)`` run.

        Only *consecutive* heap events are grouped, so a differently
        keyed event wedged between two batchable ones (by sequence)
        still executes at its exact scalar-drain position.  Returns the
        number of events executed.
        """
        heapq.heappop(self._heap)
        self._now_s = head.time_s
        batch = [head.args]
        while self._heap:
            nxt = self._heap[0]
            if nxt.cancelled:
                heapq.heappop(self._heap)
                continue
            if (
                nxt.time_s != head.time_s
                or nxt.priority != head.priority
                or nxt.kind != head.kind
            ):
                break
            heapq.heappop(self._heap)
            batch.append(nxt.args)
        if len(batch) == 1:
            if self.dispatch is None:
                raise SchedulingError(
                    f"named event {head.kind!r} queued but no dispatch "
                    f"hook is bound"
                )
            self.dispatch(head.kind, head.args)
        else:
            self.dispatch_batch(head.kind, batch)
        return len(batch)

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the queue (optionally bounded); returns events executed."""
        executed = 0
        while self.step():
            executed += 1
            if max_events is not None and executed >= max_events:
                break
        return executed

    # ---------------------------------------------------------- checkpointing

    def __getstate__(self) -> Dict[str, object]:
        """Pickle the heap as plain data (named events only).

        Ad-hoc callback events hold arbitrary callables (typically
        closures) and cannot be snapshotted; their presence makes the
        whole queue un-checkpointable, which is surfaced eagerly here.
        """
        for event in self._heap:
            if event.kind is None and not event.cancelled:
                raise CheckpointError(
                    "event queue holds callback-based events and cannot be "
                    "checkpointed; schedule via schedule_event() instead"
                )
        state = dict(self.__dict__)
        state["dispatch"] = None
        state["dispatch_batch"] = None
        # Cancelled callback events carry dead closures; drop them.
        state["_heap"] = [
            event for event in self._heap if not event.cancelled
        ]
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        heapq.heapify(self._heap)
