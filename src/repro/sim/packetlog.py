"""Per-packet event logging for simulation debugging and analysis.

Aggregate metrics answer "how did the network do"; a packet log answers
"what happened to packet 1523 of node 7".  Both simulators can record
one :class:`PacketRecord` per generated packet when
``SimulationConfig.record_packets`` is set; the log supports filtering
and CSV export for offline analysis.

At very large node counts retaining every record is the dominant memory
cost, so a log can be built with a ``sample_nodes`` set: records from
unsampled nodes still update the aggregate counters
(:attr:`PacketLog.generated` / :attr:`PacketLog.delivered` /
:attr:`PacketLog.attempts` / :attr:`PacketLog.energy_drops`) but are not
stored — :attr:`PacketLog.unsampled` counts them, while
:attr:`PacketLog.dropped` keeps its original meaning of
capacity evictions only.
"""

from __future__ import annotations

import csv
import io
from collections import deque
from dataclasses import dataclass, fields
from typing import Callable, Deque, Iterator, List, Optional

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class PacketRecord:
    """The full lifecycle of one sampled packet."""

    node_id: int
    #: Absolute time the packet was generated (sampling-period start).
    generated_at_s: float
    #: Forecast window Algorithm 1 (or ALOHA) chose; -1 if dropped at
    #: decision time (FAIL).
    window_index: int
    #: Transmission attempts used (0 when never transmitted).
    attempts: int
    #: Whether an ACK was eventually received.
    delivered: bool
    #: Generation → ACK latency; the sampling period for failures.
    latency_s: float
    #: Eq. (16) utility credited to the packet.
    utility: float
    #: Whether the failure was an energy drop (brown-out / FAIL branch).
    energy_drop: bool = False

    @property
    def retransmissions(self) -> int:
        """Attempts beyond the first (0 when never transmitted)."""
        return max(0, self.attempts - 1)


class PacketLog:
    """A bounded, append-only collection of :class:`PacketRecord`.

    ``capacity`` bounds memory for long runs: once full, the earliest
    *stored* records are dropped (the tail of a run is usually what is
    being debugged), and :attr:`dropped` counts the evictions.

    ``sample_nodes`` restricts storage to a node-id set (None stores
    everything).  Counters are updated for every appended record,
    sampled or not, so network-wide delivery accounting survives the
    retention policy.
    """

    def __init__(
        self,
        capacity: int = 1_000_000,
        sample_nodes: Optional[frozenset] = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError("capacity must be >= 1")
        self._capacity = capacity
        self._sample_nodes = (
            None if sample_nodes is None else frozenset(sample_nodes)
        )
        # deque(maxlen=...) evicts in O(1); list.pop(0) was O(n) per
        # eviction, quadratic over a long capped run.
        self._records: Deque[PacketRecord] = deque(maxlen=capacity)
        #: Stored records evicted past capacity.
        self.dropped = 0
        #: Records not stored because their node is outside sample_nodes.
        self.unsampled = 0
        #: Aggregate counters, updated for every appended record.
        self.generated = 0
        self.delivered = 0
        self.attempts = 0
        self.energy_drops = 0

    @property
    def sample_nodes(self) -> Optional[frozenset]:
        """The retained node-id set, or None when everything is stored."""
        return self._sample_nodes

    def append(self, record: PacketRecord) -> None:
        """Add a record, evicting the oldest stored one past capacity."""
        self.generated += 1
        self.attempts += record.attempts
        if record.delivered:
            self.delivered += 1
        if record.energy_drop:
            self.energy_drops += 1
        if (
            self._sample_nodes is not None
            and record.node_id not in self._sample_nodes
        ):
            self.unsampled += 1
            return
        if len(self._records) == self._capacity:
            self.dropped += 1
        self._records.append(record)

    def merge(self, other: "PacketLog") -> None:
        """Fold another log's counters and stored records into this one.

        Used by the shard coordinator: per-cell logs arrive already
        filtered/capped, so stored records append in call order (the
        caller sorts cells deterministically) and counters sum.
        """
        self.generated += other.generated
        self.delivered += other.delivered
        self.attempts += other.attempts
        self.energy_drops += other.energy_drops
        self.unsampled += other.unsampled
        self.dropped += other.dropped
        for record in other._records:
            if len(self._records) == self._capacity:
                self.dropped += 1
            self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[PacketRecord]:
        return iter(self._records)

    def for_node(self, node_id: int) -> List[PacketRecord]:
        """All records of one node, in generation order."""
        return [r for r in self._records if r.node_id == node_id]

    def failures(self) -> List[PacketRecord]:
        """Records of packets that were never ACKed."""
        return [r for r in self._records if not r.delivered]

    def where(self, predicate: Callable[[PacketRecord], bool]) -> List[PacketRecord]:
        """Records matching an arbitrary predicate."""
        return [r for r in self._records if predicate(r)]

    def to_csv(self) -> str:
        """Export the log as CSV text (one row per packet)."""
        buffer = io.StringIO()
        names = [f.name for f in fields(PacketRecord)]
        writer = csv.writer(buffer)
        writer.writerow(names)
        for record in self._records:
            writer.writerow([getattr(record, name) for name in names])
        return buffer.getvalue()
