"""Per-packet event logging for simulation debugging and analysis.

Aggregate metrics answer "how did the network do"; a packet log answers
"what happened to packet 1523 of node 7".  Both simulators can record
one :class:`PacketRecord` per generated packet when
``SimulationConfig.record_packets`` is set; the log supports filtering
and CSV export for offline analysis.
"""

from __future__ import annotations

import csv
import io
from collections import deque
from dataclasses import dataclass, fields
from typing import Callable, Deque, Iterator, List

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class PacketRecord:
    """The full lifecycle of one sampled packet."""

    node_id: int
    #: Absolute time the packet was generated (sampling-period start).
    generated_at_s: float
    #: Forecast window Algorithm 1 (or ALOHA) chose; -1 if dropped at
    #: decision time (FAIL).
    window_index: int
    #: Transmission attempts used (0 when never transmitted).
    attempts: int
    #: Whether an ACK was eventually received.
    delivered: bool
    #: Generation → ACK latency; the sampling period for failures.
    latency_s: float
    #: Eq. (16) utility credited to the packet.
    utility: float
    #: Whether the failure was an energy drop (brown-out / FAIL branch).
    energy_drop: bool = False

    @property
    def retransmissions(self) -> int:
        """Attempts beyond the first (0 when never transmitted)."""
        return max(0, self.attempts - 1)


class PacketLog:
    """A bounded, append-only collection of :class:`PacketRecord`.

    ``capacity`` bounds memory for long runs: once full, the earliest
    records are dropped (the tail of a run is usually what is being
    debugged), and :attr:`dropped` counts the evictions.
    """

    def __init__(self, capacity: int = 1_000_000) -> None:
        if capacity < 1:
            raise ConfigurationError("capacity must be >= 1")
        self._capacity = capacity
        # deque(maxlen=...) evicts in O(1); list.pop(0) was O(n) per
        # eviction, quadratic over a long capped run.
        self._records: Deque[PacketRecord] = deque(maxlen=capacity)
        self.dropped = 0

    def append(self, record: PacketRecord) -> None:
        """Add a record, evicting the oldest past capacity."""
        if len(self._records) == self._capacity:
            self.dropped += 1
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[PacketRecord]:
        return iter(self._records)

    def for_node(self, node_id: int) -> List[PacketRecord]:
        """All records of one node, in generation order."""
        return [r for r in self._records if r.node_id == node_id]

    def failures(self) -> List[PacketRecord]:
        """Records of packets that were never ACKed."""
        return [r for r in self._records if not r.delivered]

    def where(self, predicate: Callable[[PacketRecord], bool]) -> List[PacketRecord]:
        """Records matching an arbitrary predicate."""
        return [r for r in self._records if predicate(r)]

    def to_csv(self) -> str:
        """Export the log as CSV text (one row per packet)."""
        buffer = io.StringIO()
        names = [f.name for f in fields(PacketRecord)]
        writer = csv.writer(buffer)
        writer.writerow(names)
        for record in self._records:
            writer.writerow([getattr(record, name) for name in names])
        return buffer.getvalue()
