"""The exact, event-driven network simulator (NS-3 substitute).

Wires topology, PHY, energy subsystem, MAC policies, gateway, and server
into a deterministic discrete-event simulation.  Every transmission
attempt is an explicit event with exact airtime overlap, capture, the ω
demodulator limit, class-A ACK timing, and per-attempt retransmission
backoff — the level of fidelity of the paper's NS-3 runs.  Use this for
testbed-scale scenarios (tens of nodes, hours-to-weeks); multi-year
500-node sweeps use :mod:`repro.sim.mesoscopic`.
"""

from __future__ import annotations

import dataclasses
import random
import time
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..battery import Battery
from ..checkpoint.interrupt import last_signal, stop_requested
from ..core import (
    BatteryLifespanAwareMac,
    ConfirmedUplinkRetrier,
    LorawanAlohaMac,
    MacPolicy,
    PeriodContext,
    ThresholdOnlyMac,
    WindowDecision,
)
from ..core.mac import batch_choose_windows_mixed
from ..checkpoint.core import save_checkpoint
from ..exceptions import ProtocolError, SchedulingError, SimulationInterrupted
from ..faults import FaultCounters, FaultInjector
from ..energy import (
    CloudProcess,
    EnergyForecaster,
    Harvester,
    NoisyForecaster,
    OracleForecaster,
    PersistenceForecaster,
    SolarModel,
)
from ..kernels import emit_startup_notice
from ..lora import (
    AdrController,
    ChannelHopper,
    ChannelPlan,
    DutyCycleLimiter,
    LogDistanceLink,
    Transmission,
)
from ..obs import (
    Observability,
    RunManifest,
    config_hash,
    git_revision,
    hot_profiler,
)
from .config import SimulationConfig
from .events import EventQueue
from .gateway import Gateway
from .metrics import NetworkMetrics
from .node import EndDevice
from .packetlog import PacketLog
from .server import NetworkServer
from .topology import NodePlacement, build_topology


@dataclass
class SimulationResult:
    """Everything a run produces."""

    config: SimulationConfig
    metrics: NetworkMetrics
    gateway_stats: "object"
    uplinks_received: int
    disseminations_sent: int
    events_executed: int
    #: Per-packet records when ``record_packets`` was enabled, else None.
    packet_log: "PacketLog | None" = None
    #: Per-fault counters when the config carried a fault plan, else None.
    fault_counters: "FaultCounters | None" = None
    #: Run manifest: config hash, seed, phase timings, throughput.
    manifest: "RunManifest | None" = None
    #: The run's instrumentation bundle (trace bus, metrics registry).
    obs: "Observability | None" = None


def build_forecaster(
    config: SimulationConfig, harvester: Harvester, node_id: int
) -> EnergyForecaster:
    """Instantiate the forecaster family a config selects."""
    if config.forecaster == "persistence":
        return PersistenceForecaster(
            peak_window_energy_j=config.solar_peak_watts() * config.window_s
        )
    if config.forecaster == "noisy" or config.forecast_sigma > 0:
        return NoisyForecaster(
            harvester,
            sigma=config.forecast_sigma if config.forecast_sigma > 0 else 0.15,
            seed=config.seed * 31 + node_id,
        )
    return OracleForecaster(harvester)


def build_mac(config: SimulationConfig, capacity_j: float, nominal_j: float) -> MacPolicy:
    """Instantiate the MAC policy a config describes."""
    if config.use_window_selection:
        return BatteryLifespanAwareMac(
            soc_cap=config.soc_cap,
            w_b=config.w_b,
            max_tx_energy_j=config.max_tx_energy_j(),
            nominal_tx_energy_j=nominal_j,
            beta=config.ewma_beta,
            battery_capacity_j=capacity_j,
            w_u_ttl_s=config.w_u_ttl_s,
        )
    if config.soc_cap >= 1.0:
        return LorawanAlohaMac()
    return ThresholdOnlyMac(soc_cap=config.soc_cap)


class Simulator:
    """Deterministic event-driven simulation of one configuration."""

    #: Delay between the end of an uplink and the ACK in RX1.
    ACK_DELAY_S = 1.0

    def __init__(
        self, config: SimulationConfig, obs: "Observability | None" = None
    ) -> None:
        self.config = config
        self.obs = obs if obs is not None else config.build_observability()
        #: Hot-path trace handle; None makes every emission guard dead.
        self._trace = self.obs.trace
        self.queue = EventQueue()
        self.queue.dispatch = self._dispatch
        self.rng = random.Random(config.seed ^ 0x5EED)
        #: Fault oracle; None reproduces the fault-free world exactly.
        #: The injector draws from its own seeded RNG streams, so runs
        #: with and without a plan stay individually bit-reproducible.
        self.injector = (
            FaultInjector(
                config.faults,
                gateway_count=config.gateway_count,
                default_seed=config.seed,
            )
            if config.faults is not None
            else None
        )
        self.link = LogDistanceLink(path_loss_exponent=config.path_loss_exponent)
        #: One Gateway per site; an uplink is delivered when any of them
        #: decodes it (the network server de-duplicates).
        self.gateways = [Gateway(omega=config.omega) for _ in range(config.gateway_count)]
        self.gateway = self.gateways[0]
        self.server = NetworkServer()
        self.packet_log = (
            PacketLog(sample_nodes=config.effective_sample_nodes())
            if config.record_packets
            else None
        )
        self._bind_batch_dispatch()
        self.adr = AdrController() if config.adr_enabled else None
        self.duty_cycle = (
            DutyCycleLimiter(duty_cycle=config.duty_cycle)
            if config.duty_cycle < 1.0
            else None
        )
        plan = ChannelPlan().subset(config.channel_count)
        clouds = CloudProcess(seed=config.seed)

        if self._trace is not None:
            self.server.service.bind_trace(self._trace)
            if self.injector is not None:
                self.injector.bind_trace(self._trace, now=self._now_clock)

        self.nodes: Dict[int, EndDevice] = {}
        with self.obs.profiler.phase("build"):
            placements = build_topology(config, self.link)
            for placement in placements:
                self.nodes[placement.node_id] = self._build_node(
                    placement, plan, clouds
                )
        self._events_executed = 0
        self._started = False

    def _now_clock(self) -> float:
        """Picklable clock hook (bound method, not a closure)."""
        return self.queue.now_s

    # ------------------------------------------------------------- building

    def _build_node(
        self, placement: NodePlacement, plan: ChannelPlan, clouds: CloudProcess
    ) -> EndDevice:
        config = self.config
        params = config.tx_params(placement.spreading_factor)
        capacity = config.battery_capacity_j(placement.spreading_factor)
        battery = Battery(
            capacity_j=capacity,
            initial_soc=config.initial_soc,
            temperature_c=config.temperature_c,
            incremental=config.incremental_degradation,
        )
        solar = SolarModel(peak_watts=config.solar_peak_watts(), clouds=clouds)
        harvester = Harvester(
            solar=solar,
            node_seed=config.seed * 10_007 + placement.node_id,
            shading_sigma=config.shading_sigma,
        )
        forecaster = build_forecaster(config, harvester, placement.node_id)
        if self.injector is not None:
            forecaster = self.injector.wrap_forecaster(
                forecaster, placement.node_id
            )
        energy_model = config.energy_model()
        nominal = energy_model.tx_attempt_energy(params)
        mac = build_mac(config, capacity, nominal)
        node_rng = random.Random(config.seed * 7919 + placement.node_id)
        hopper = ChannelHopper(plan, rng=node_rng)
        on_brownout = (
            self.injector.on_brownout if self.injector is not None else None
        )
        return EndDevice(
            placement=placement,
            tx_params=params,
            battery=battery,
            harvester=harvester,
            forecaster=forecaster,
            mac=mac,
            hopper=hopper,
            window_s=config.window_s,
            energy_model=energy_model,
            rng=node_rng,
            max_retransmissions=config.max_retransmissions,
            packet_log=self.packet_log,
            retrier=ConfirmedUplinkRetrier(
                max_retransmissions=config.max_retransmissions
            ),
            on_brownout=on_brownout,
            trace=self._trace,
        )

    # ---------------------------------------------------------- dispatching

    #: Checkpoint events run strictly after every same-time simulation
    #: event, so a snapshot always captures a settled instant.
    CHECKPOINT_PRIORITY = 100

    def _dispatch(self, kind: str, args: tuple) -> None:
        """Route a named event from the queue to its handler."""
        if kind == "attempt":
            self._on_attempt(*args)
        elif kind == "attempt_end":
            self._on_attempt_end(*args)
        elif kind == "period":
            self._on_period(*args)
        elif kind == "refresh":
            self._on_refresh(*args)
        elif kind == "reboot":
            self._on_reboot(*args)
        elif kind == "checkpoint":
            self._on_checkpoint()
        else:
            raise SchedulingError(f"unknown event kind {kind!r}")

    def _bind_batch_dispatch(self) -> None:
        """Enable the batched event drain when it is provably inert.

        Tracing and packet recording interleave their per-node output
        inside each scalar handler; the batched handler phases its work
        (settle/forecast for all, then one vector decision, then
        scheduling), which would reorder those streams.  Results would
        still be identical, but byte-identical observability is part of
        the fast path's contract — so those runs keep the scalar drain.
        """
        if (
            getattr(self.config, "exact_batched", True)
            and self._trace is None
            and self.packet_log is None
        ):
            self.queue.dispatch_batch = self._dispatch_batch
            self.queue.batch_kinds = frozenset({"period"})
        else:
            self.queue.dispatch_batch = None
            self.queue.batch_kinds = frozenset()

    def _dispatch_batch(self, kind: str, batch: List[tuple]) -> None:
        """Route a same-instant run of named events popped in one go."""
        if kind == "period":
            self._on_period_batch([args[0] for args in batch])
        else:  # pragma: no cover - only "period" is registered batchable
            for args in batch:
                self._dispatch(kind, args)

    # -------------------------------------------------------------- running

    def run(self) -> SimulationResult:
        """Execute the configured duration and aggregate the results.

        Works for fresh simulators and for ones restored from a
        checkpoint: a resumed simulator skips initial scheduling (its
        event queue already holds the future) and plays out the rest of
        the horizon.
        """
        try:
            return self._run_impl()
        except BaseException:
            # The trace sink must not lose buffered lines when a run
            # dies or is interrupted; close() is idempotent, so the
            # completion path's obs.close() stays a harmless no-op.
            self.obs.close()
            raise

    def _schedule_initial(self) -> None:
        """Queue the events a fresh run starts from."""
        for node in self.nodes.values():
            start = node.placement.start_offset_s
            self._schedule_period(node, start)
        self._schedule_refresh(self.config.dissemination_interval_s)
        if self.injector is not None:
            for node in self.nodes.values():
                for reboot in self.injector.reboots_for(node.node_id):
                    if reboot.time_s < self.config.duration_s:
                        self.queue.schedule_event(
                            reboot.time_s, "reboot", node, priority=-2
                        )
        every = self.config.checkpoint_every_s
        if (
            every is not None
            and self.config.checkpoint_dir is not None
            and every < self.config.duration_s
        ):
            self.queue.schedule_event(
                every, "checkpoint", priority=self.CHECKPOINT_PRIORITY
            )

    def _run_impl(self) -> SimulationResult:
        fresh = not self._started
        if fresh and self._trace is not None:
            self._trace.emit(
                0.0,
                "engine",
                "engine.run_started",
                engine="exact",
                seed=self.config.seed,
                nodes=self.config.node_count,
                duration_s=self.config.duration_s,
            )
            emit_startup_notice(self._trace)
        with self.obs.profiler.phase("run"):
            if fresh:
                self._started = True
                self._schedule_initial()
            completed = self.queue.run_until(
                self.config.duration_s, stop_check=stop_requested
            )
            if not completed:
                self._interrupted()
        with self.obs.profiler.phase("finalize"):
            self._finalize()
            counters = (
                self.injector.counters if self.injector is not None else None
            )
            metrics = NetworkMetrics(
                nodes={nid: n.metrics for nid, n in self.nodes.items()},
                faults=counters,
            )
        manifest = self._build_manifest()
        metrics.publish(self.obs.metrics)
        self._publish_engine_metrics()
        if self._trace is not None:
            self._trace.emit(
                self.config.duration_s,
                "engine",
                "engine.run_finished",
                engine="exact",
                events_executed=self._events_executed,
                wall_s=manifest.wall_s,
                sim_s_per_wall_s=manifest.sim_s_per_wall_s,
            )
            # Include the closing marker in the manifest's accounting.
            manifest.trace_events = self._trace.emitted
            manifest.trace_dropped = self._trace.dropped
        self.obs.close()
        return SimulationResult(
            config=self.config,
            metrics=metrics,
            gateway_stats=self.gateway.stats,
            uplinks_received=self.server.uplinks_received,
            disseminations_sent=self.server.disseminations_sent,
            events_executed=self._events_executed,
            packet_log=self.packet_log,
            fault_counters=counters,
            manifest=manifest,
            obs=self.obs,
        )

    # -------------------------------------------------------- observability

    def _build_manifest(self) -> RunManifest:
        """Assemble the run manifest from config identity and timings."""
        trace = self._trace
        manifest = RunManifest(
            engine="exact",
            seed=self.config.seed,
            config_hash=config_hash(self.config),
            node_count=self.config.node_count,
            duration_s=self.config.duration_s,
            policy=self.config.policy_name,
            # A subprocess per run is too slow for sweeps; resolve the
            # revision only when the run is actually being traced.
            git_rev=git_revision() if trace is not None else None,
            events_executed=self._events_executed,
            peak_queue_depth=self.queue.peak_pending,
            trace_events=trace.emitted if trace is not None else 0,
            trace_dropped=trace.dropped if trace is not None else 0,
            trace_path=self.config.trace_path,
        )
        manifest.finalize(self.obs.profiler, simulated_s=self.config.duration_s)
        return manifest

    def _publish_engine_metrics(self) -> None:
        """Fold engine-level counters into the metrics registry."""
        registry = self.obs.metrics
        registry.counter(
            "events_executed_total", "Discrete events the engine executed"
        ).inc(self._events_executed)
        registry.counter(
            "uplinks_received_total", "Uplinks decoded by the network server"
        ).inc(self.server.uplinks_received)
        registry.counter(
            "disseminations_sent_total", "ACKs that carried a w_u byte"
        ).inc(self.server.disseminations_sent)
        registry.gauge(
            "event_queue_peak_depth", "High-water mark of the event heap"
        ).set(self.queue.peak_pending)

    # ---------------------------------------------------------- event logic

    def _schedule_period(self, node: EndDevice, when_s: float) -> None:
        # A period starting at the horizon would generate a packet whose
        # transmission can never complete; cut generation strictly before.
        if when_s >= self.config.duration_s:
            return
        self.queue.schedule_event(when_s, "period", node)

    def _on_period(self, node: EndDevice) -> None:
        self._events_executed += 1
        now = self.queue.now_s
        if node.packet is not None:
            # Previous packet still in flight at its deadline: fail it.
            node.finish_packet(now, delivered=False, latency_s=node.period_s)
        if (
            self.injector is not None
            and isinstance(node.mac, BatteryLifespanAwareMac)
            and node.mac.weight_is_stale(now)
        ):
            self.injector.record_stale_weight_period()
        first_attempt = node.start_period(now)
        if first_attempt is not None:
            if self.injector is not None:
                # Clock skew displaces the node's view of the window
                # boundary (never before the packet exists).
                first_attempt = self.injector.skew_attempt(
                    node.node_id, first_attempt, now
                )
            packet = node.packet
            self.queue.schedule_event(first_attempt, "attempt", node, packet)
        self._schedule_period(node, now + node.period_s)

    def _on_period_batch(self, nodes: List[EndDevice]) -> None:
        """Same-instant period cohort, decided in one vector pass.

        Nodes arrive in exact heap pop order.  The handler phases the
        scalar :meth:`_on_period` body — per-node settle/forecast, one
        batched Algorithm-1 scoring, per-node packet/scheduling — in a
        way that preserves every observable ordering: all cross-node
        state (RNG streams, estimators, batteries) is touched per node
        in pop order, and the scheduling loop assigns the exact sequence
        numbers the scalar drain would (no handler schedules between two
        same-instant periods).  Nominal attempt energies feeding the
        scorer come from the shared :class:`~repro.lora.AirtimeTable`
        entries each node resolved at build time.
        """
        now = self.queue.now_s
        self._events_executed += len(nodes)
        forecasts = []
        for node in nodes:
            if node.packet is not None:
                # Previous packet still in flight at its deadline: fail it.
                node.finish_packet(now, delivered=False, latency_s=node.period_s)
            if (
                self.injector is not None
                and isinstance(node.mac, BatteryLifespanAwareMac)
                and node.mac.weight_is_stale(now)
            ):
                self.injector.record_stale_weight_period()
            forecasts.append(node.begin_period(now))
        prof = hot_profiler()
        if prof.enabled:
            started = time.perf_counter()
            decisions = self._batch_window_decisions(nodes, forecasts, now)
            prof.add("engine.period_batch", time.perf_counter() - started)
        else:
            decisions = self._batch_window_decisions(nodes, forecasts, now)
        for node, decision in zip(nodes, decisions):
            first_attempt = node.finish_period_decision(now, decision)
            if first_attempt is not None:
                if self.injector is not None:
                    first_attempt = self.injector.skew_attempt(
                        node.node_id, first_attempt, now
                    )
                self.queue.schedule_event(
                    first_attempt, "attempt", node, node.packet
                )
            self._schedule_period(node, now + node.period_s)

    def _batch_window_decisions(
        self,
        nodes: List[EndDevice],
        forecasts: List[list],
        now: float,
    ) -> List[WindowDecision]:
        """Per-node window decisions, vectorized where the MAC allows.

        Lifespan-aware MACs go through the padded mixed-|T| batch scorer
        (bit-identical per row to the scalar Algorithm 1, estimator side
        effects in pop order); immediate-transmit baselines consult
        their scalar :meth:`~repro.core.MacPolicy.choose_window` — it is
        a constant-time decision with nothing to vectorize.
        """
        decisions: List[object] = [None] * len(nodes)
        aware = [
            i
            for i, node in enumerate(nodes)
            if isinstance(node.mac, BatteryLifespanAwareMac)
        ]
        aware_set = set(aware)
        for i, node in enumerate(nodes):
            if i in aware_set:
                continue
            decisions[i] = node.mac.choose_window(
                PeriodContext(
                    battery_energy_j=node.battery.stored_j,
                    green_forecast_j=forecasts[i],
                    nominal_tx_energy_j=node.attempt_energy_j,
                    period_start_s=now,
                )
            )
        if aware:
            counts = [len(forecasts[i]) for i in aware]
            widest = max(counts)
            green = np.zeros((len(aware), widest))
            for row, i in enumerate(aware):
                green[row, : counts[row]] = forecasts[i]
            batch = batch_choose_windows_mixed(
                [nodes[i].mac for i in aware],
                np.array([nodes[i].battery.stored_j for i in aware]),
                green,
                [nodes[i].attempt_energy_j for i in aware],
                counts,
                now,
            )
            for row, i in enumerate(aware):
                ok = bool(batch.success[row])
                count = counts[row]
                decisions[i] = WindowDecision(
                    success=ok,
                    window_index=int(batch.window_index[row]) if ok else None,
                    scores=batch.scores[row, :count].tolist(),
                    utilities=batch.utilities[row, :count].tolist(),
                    difs=batch.difs[row, :count].tolist(),
                )
        return decisions

    def _on_attempt(self, node: EndDevice, packet) -> None:
        self._events_executed += 1
        now = self.queue.now_s
        if node.packet is not packet:
            return  # Packet failed at a period boundary or lost to a reboot.
        if self.duty_cycle is not None and not self.duty_cycle.can_transmit(
            node.node_id, now
        ):
            # Regulatory off-period still running: defer the attempt.
            resume = self.duty_cycle.next_allowed_time(node.node_id)
            self.queue.schedule_event(resume, "attempt", node, packet)
            return
        if not node.draw_attempt_energy(now):
            # Brown-out: battery cannot fund the attempt.
            node.metrics.packets_dropped_energy += 1
            node.finish_packet(now, delivered=False, latency_s=node.period_s)
            if self.injector is not None and self.injector.reboot_on_brownout:
                self._reboot_node(node)
            return
        packet.battery_energy_j += node.attempt_energy_j
        packet.tx_energy_metric_j += node.tx_energy_j
        packet.discharge_soc = node.battery.soc
        channel = node.hopper.next_channel()
        if self._trace is not None:
            self._trace.emit(
                now,
                "packet",
                "packet.attempt",
                severity="debug",
                node_id=node.node_id,
                attempt=packet.attempt,
                channel=channel.index,
                soc=node.battery.soc,
            )
        tokens = []
        for index, (distance, gateway) in enumerate(
            zip(node.placement.gateway_distances_m, self.gateways)
        ):
            if self.injector is not None and self.injector.gateway_down(
                index, now
            ):
                # The gateway is down: the uplink is simply not heard
                # there (and contributes no interference at that site).
                self.injector.record_uplink_lost_outage()
                continue
            rssi = self.link.rssi_dbm(
                node.tx_params.tx_power_dbm,
                distance,
                antenna_gain_db=self.config.gateway_antenna_gain_db,
            )
            tx = Transmission(
                node_id=node.node_id,
                start_s=now,
                duration_s=node.airtime_s,
                channel_index=channel.index,
                spreading_factor=node.tx_params.spreading_factor,
                rssi_dbm=rssi,
                attempt=packet.attempt,
            )
            tokens.append((gateway, gateway.begin_reception(tx, node.tx_params)))
        if self.duty_cycle is not None:
            self.duty_cycle.record(node.node_id, now, node.airtime_s)
        self.queue.schedule_event(
            now + node.airtime_s, "attempt_end", node, packet, tokens
        )

    def _on_attempt_end(self, node: EndDevice, packet, tokens) -> None:
        self._events_executed += 1
        now = self.queue.now_s
        # Every gateway must close out its reception; delivery needs any
        # one of them to have decoded the uplink.
        delivered = False
        for gateway, token in tokens:
            if gateway.end_reception(token):
                delivered = True
        if node.packet is not packet:
            return
        if delivered:
            ack_time = now + self.ACK_DELAY_S
            if self.adr is not None:
                best_rssi = max(token.transmission.rssi_dbm for _, token in tokens)
                snr = self.link.snr_db(best_rssi, node.tx_params.bandwidth_hz)
                self.adr.record_uplink(node.node_id, snr)
            # The uplink reached the network server: the piggybacked
            # report is consumed whether or not the ACK makes it back.
            report = node.take_pending_report()
            payload = self.server.handle_uplink(
                node.node_id,
                ack_time,
                report=report,
                period_start_s=packet.period_start_s,
                window_s=node.window_s,
            )
            ack_lost = self.injector is not None and self.injector.ack_lost(
                node.node_id, ack_time
            )
            if not ack_lost:
                if self.adr is not None:
                    # ADR decisions travel in the downlink, so they only
                    # reach the node when the ACK does.
                    decision = self.adr.decide(node.node_id, node.tx_params)
                    if decision.changed:
                        node.update_tx_params(
                            dataclasses.replace(
                                node.tx_params,
                                spreading_factor=decision.spreading_factor,
                                tx_power_dbm=decision.tx_power_dbm,
                            )
                        )
                if payload.w_u is not None:
                    node.mac.set_normalized_degradation(
                        payload.w_u, received_at_s=ack_time
                    )
                    node.needs_weight_refresh = False
                latency = ack_time - packet.generated_at_s
                node.finish_packet(now, delivered=True, latency_s=latency)
                return
            # ACK lost: the node cannot tell a lost uplink from a lost
            # ACK and falls into the same retry path.  A dissemination
            # burned on the lost ACK stays unreceived — the stale-w_u
            # decay (and reboot re-requests) cover exactly this case.
            node.metrics.acks_lost += 1
            if node.needs_weight_refresh:
                self.server.force_dissemination(node.node_id)
        packet.attempt += 1
        try:
            backoff = node.backoff_s(packet.attempt)
        except ProtocolError:
            # Retry budget exhausted: the packet is abandoned.
            node.metrics.retries_exhausted += 1
            if self.injector is not None:
                self.injector.record_retry_exhausted()
            node.finish_packet(now, delivered=False, latency_s=node.period_s)
            return
        if self.duty_cycle is not None:
            # The regulatory off-period floors the backoff; scheduling
            # inside it would only bounce off the duty-cycle guard.
            backoff = max(
                backoff, self.duty_cycle.remaining_off_s(node.node_id, now)
            )
        self.queue.schedule_event(now + backoff, "attempt", node, packet)

    def _on_reboot(self, node: EndDevice) -> None:
        """Scheduled brown-out reboot event for one node."""
        self._events_executed += 1
        self._reboot_node(node)

    def _reboot_node(self, node: EndDevice) -> None:
        """Execute reboot semantics: fail, wipe, and re-request a weight."""
        now = self.queue.now_s
        if node.packet is not None:
            # The in-flight packet dies with the volatile state.
            node.finish_packet(now, delivered=False, latency_s=node.period_s)
        node.reboot(now)
        if self.injector is not None:
            self.injector.record_reboot()
        # The rebooted node signals for a fresh w_u; the server answers
        # on the next ACK regardless of the dissemination interval.
        self.server.force_dissemination(node.node_id)

    def _schedule_refresh(self, when_s: float) -> None:
        if when_s > self.config.duration_s:
            return
        self.queue.schedule_event(when_s, "refresh", when_s, priority=-1)

    def _on_refresh(self, when_s: float) -> None:
        """Daily gateway pass: recompute and normalize degradations."""
        self._events_executed += 1
        if self._trace is not None:
            self._trace.emit(
                self.queue.now_s,
                "engine",
                "engine.degradation_refresh",
                severity="debug",
                nodes=len(self.nodes),
            )
        started = time.perf_counter()
        compact = self.config.compact_trace
        for node in self.nodes.values():
            node.settle_to(self.queue.now_s)
            degradation = node.battery.refresh_degradation()
            if compact:
                node.battery.trace.compact_tail()
            self.server.publish_degradation(node.node_id, degradation)
            node.metrics.degradation = degradation
            breakdown = node.battery.last_breakdown
            if breakdown is not None:
                node.metrics.cycle_aging = breakdown.cycle
                node.metrics.calendar_aging = breakdown.calendar
        self._record_refresh_wall(time.perf_counter() - started)
        self._schedule_refresh(when_s + self.config.dissemination_interval_s)

    def _record_refresh_wall(self, elapsed_s: float) -> None:
        """Publish one refresh pass's wall time to metrics and trace."""
        self.obs.metrics.counter(
            "degradation_refresh_seconds",
            "Wall seconds spent in Eq. (1)-(4) refresh passes",
        ).inc(elapsed_s)
        if self._trace is not None:
            self._trace.emit(
                self.queue.now_s,
                "perf",
                "perf.refresh",
                severity="debug",
                nodes=len(self.nodes),
                wall_s=elapsed_s,
                incremental=self.config.incremental_degradation,
            )

    # -------------------------------------------------------- checkpointing

    def _on_checkpoint(self) -> None:
        """Scheduled snapshot event (cadence-driven, deterministic).

        The successor is scheduled *before* saving so every snapshot
        already contains its own continuation; the metrics counter and
        trace marker are bumped before pickling for the same reason —
        a resumed run continues both series exactly where the reference
        run's were at that instant.
        """
        now = self.queue.now_s
        nxt = now + self.config.checkpoint_every_s
        if nxt < self.config.duration_s:
            self.queue.schedule_event(
                nxt, "checkpoint", priority=self.CHECKPOINT_PRIORITY
            )
        self.obs.metrics.counter(
            "checkpoints_written_total", "Checkpoints the engine wrote"
        ).inc()
        if self._trace is not None:
            self._trace.emit(
                now,
                "engine",
                "engine.checkpoint",
                severity="debug",
                events_executed=self._events_executed,
            )
        save_checkpoint(self, self.config.checkpoint_dir, now, engine="exact")

    def _interrupted(self) -> None:
        """Unwind after a SIGINT/SIGTERM stop request.

        Writes a rescue snapshot (when checkpointing is configured)
        *without* touching the checkpoint counter or trace — it is
        out-of-band bookkeeping, and a run resumed from it must still
        reproduce the reference run's metrics and trace byte-for-byte.
        """
        now = self.queue.now_s
        path = None
        if self.config.checkpoint_dir is not None:
            path = save_checkpoint(
                self, self.config.checkpoint_dir, now, engine="exact"
            )
        raise SimulationInterrupted(
            f"exact run stopped by signal at t={now:.3f}s",
            time_s=now,
            checkpoint_path=path,
            signum=last_signal(),
        )

    def __setstate__(self, state: Dict[str, object]) -> None:
        """Re-bind the live hooks pickling strips (dispatch, injector)."""
        self.__dict__.update(state)
        self.queue.dispatch = self._dispatch
        self._bind_batch_dispatch()
        if self.injector is not None:
            self.injector.rebind(trace=self._trace, now=self._now_clock)

    def _finalize(self) -> None:
        """Settle all nodes to the end time and record final state."""
        end = self.config.duration_s
        started = time.perf_counter()
        for node in self.nodes.values():
            if node.packet is not None:
                node.finish_packet(end, delivered=False, latency_s=node.period_s)
            node.settle_to(end)
            degradation = node.battery.refresh_degradation()
            node.metrics.degradation = degradation
            breakdown = node.battery.last_breakdown
            if breakdown is not None:
                node.metrics.cycle_aging = breakdown.cycle
                node.metrics.calendar_aging = breakdown.calendar
            node.metrics.final_soc = node.battery.soc
        self._record_refresh_wall(time.perf_counter() - started)


def run_simulation(
    config: SimulationConfig, obs: "Observability | None" = None
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    return Simulator(config, obs=obs).run()
