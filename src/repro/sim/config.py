"""Simulation configuration.

One dataclass gathers every knob the paper's evaluation sweeps so that
scenarios (Section IV-A setup, the testbed of Section IV-B, and the
ablations) are plain data.  Defaults follow the paper: sampling periods
drawn from [16, 60] minutes, 1-minute forecast windows, ``w_b = 1``,
insulated batteries at 25 °C, a solar panel whose peak supports two
transmissions per window, and a battery sized for 24 hours of operation.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Optional, Tuple

from ..constants import SECONDS_PER_DAY
from ..exceptions import ConfigurationError
from ..faults import FaultPlan
from ..lora import EnergyModel, SpreadingFactor, TxParams, time_on_air, tx_energy


@dataclass(frozen=True)
class SimulationConfig:
    """Full description of one simulated deployment."""

    # ---------------------------------------------------------------- network
    #: Number of end devices.
    node_count: int = 100
    #: Deployment radius around the single gateway (paper: up to 5 km).
    radius_m: float = 5000.0
    #: Number of uplink channels the gateway listens on (testbed: 1).
    channel_count: int = 1
    #: ω — simultaneous receptions each gateway can demodulate.
    omega: int = 8
    #: Number of gateways ("one or more gateways", Section II-C).  The
    #: first sits at the origin; additional gateways spread evenly on a
    #: ring at 60 % of the deployment radius.  An uplink is delivered if
    #: *any* gateway decodes it (standard LoRaWAN de-duplication).
    gateway_count: int = 1
    #: Fixed SF for every node, or None for distance-based assignment.
    fixed_sf: Optional[SpreadingFactor] = SpreadingFactor.SF10
    #: Log-distance path-loss exponent (3.0 keeps 5 km within SF12 range).
    path_loss_exponent: float = 3.0
    #: Gateway antenna gain in dB.
    gateway_antenna_gain_db: float = 3.0

    # ------------------------------------------------------------------- MAC
    #: θ — SoC cap; 1.0 together with ``use_window_selection=False``
    #: reproduces plain LoRaWAN.
    soc_cap: float = 0.5
    #: Whether Algorithm 1 chooses windows (False → immediate ALOHA).
    use_window_selection: bool = True
    #: w_b — importance of degradation over utility (paper uses 1).
    w_b: float = 1.0
    #: β — EWMA weight of Eq. (13).
    ewma_beta: float = 0.3
    #: Maximum retransmissions per packet (LoRa limit).
    max_retransmissions: int = 8
    #: Whether the network server runs margin-based ADR on uplink SNR
    #: (exact engine only; the evaluation fixes SF per node).
    adr_enabled: bool = False
    #: Regulatory duty-cycle budget enforced per node (1.0 = disabled;
    #: EU-style deployments use 0.01).
    duty_cycle: float = 1.0

    # ------------------------------------------------------------------ time
    #: Sampling-period range in seconds (paper: [16, 60] minutes).
    period_range_s: Tuple[float, float] = (16 * 60.0, 60 * 60.0)
    #: Forecast-window length (paper: 1 minute).
    window_s: float = 60.0
    #: Whether all nodes power on together at t = 0 (synchronized
    #: deployments make same-period cohorts collide persistently — the
    #: regime the paper's ALOHA numbers reflect); False staggers starts
    #: uniformly across each node's period.
    synchronized_start: bool = True
    #: Boot jitter applied when starts are synchronized: each node's
    #: first period begins uniformly within this many seconds of t = 0
    #: (hand-powered testbeds boot seconds apart, not microseconds).
    start_jitter_s: float = 0.0
    #: Total simulated time.
    duration_s: float = 28 * SECONDS_PER_DAY

    # ------------------------------------------------------------------- PHY
    payload_bytes: int = 10
    tx_power_dbm: float = 14.0

    # ---------------------------------------------------------------- energy
    #: Peak panel output expressed in transmissions-per-window (paper: 2).
    solar_peak_transmissions: float = 2.0
    #: Battery sized as ``sizing_factor ×`` 24 h of average *nominal*
    #: demand.  3.0 leaves the headroom real cells ship with: at θ = 0.5
    #: the stored energy still exceeds the paper's "24 hours of
    #: operation" even when collisions inflate demand beyond nominal,
    #: keeping night-time cycle depths realistic (calendar aging remains
    #: the dominant term, Fig. 2).
    battery_sizing_factor: float = 3.0
    #: Initial SoC of every battery (fresh deployment at the cap).
    initial_soc: float = 0.5
    #: Fixed internal battery temperature (paper: insulated, 25 °C).
    temperature_c: float = 25.0
    #: Forecaster family: "oracle" (perfect), "noisy" (oracle with
    #: multiplicative log-normal error ``forecast_sigma``), or
    #: "persistence" (envelope-shaped persistence learned only from the
    #: node's own observed harvest — no oracle information at all).
    forecaster: str = "oracle"
    #: Forecast error (log-sigma) used by the "noisy" forecaster.
    forecast_sigma: float = 0.0
    #: Node-local shading variation of the shared solar trace.
    shading_sigma: float = 0.2

    # ---------------------------------------------------------------- faults
    #: Fault-injection plan (ACK loss, gateway outages, node reboots,
    #: clock skew, forecast corruption).  None simulates the fault-free
    #: world of the paper's evaluation.  Exact engine only; the
    #: mesoscopic runner ignores the plan.
    faults: Optional[FaultPlan] = None
    #: TTL applied by BLAM nodes to the disseminated ``w_u`` — past it
    #: the weight decays toward the new-battery default instead of
    #: steering the DIF with stale data.  None disables staleness
    #: tracking (the paper's implicit fault-free assumption).
    w_u_ttl_s: Optional[float] = None

    # ----------------------------------------------------------- performance
    #: Refresh Eq. (1)-(4) from the streaming rainflow accumulator —
    #: O(new SoC samples) per refresh instead of re-counting the whole
    #: trace — bit-identical to the batch recomputation (see
    #: docs/PERFORMANCE.md).  False forces the original batch path.
    incremental_degradation: bool = True
    #: Drop already-counted SoC turning points after each degradation
    #: refresh so memory stays bounded over decade-long runs.  Requires
    #: ``incremental_degradation`` (the batch path still needs the full
    #: trace); off by default because it discards per-node SoC history
    #: some analyses read back.
    compact_trace: bool = False
    #: Run the mesoscopic engine through its NumPy fast path: per-batch
    #: node-state arrays, batched harvest/forecast kernels and the
    #: batched Algorithm-1 scorer.  Decisions, RNG streams and results
    #: are equivalent to the scalar sweep (see docs/PERFORMANCE.md);
    #: False forces the scalar reference path.  Event tracing always
    #: uses the scalar path regardless of this flag.
    vectorized: bool = True
    #: Exact-engine batched fast path: same-instant period events (the
    #: cohorts synchronized deployments produce every whole minute) are
    #: popped from the event heap in one run and their Algorithm-1
    #: window decisions computed in a single AirtimeTable-backed vector
    #: pass.  Execution order, RNG draws, scheduling sequence numbers
    #: and results are identical to the one-event-at-a-time drain (see
    #: docs/PERFORMANCE.md); the engine falls back to that drain
    #: automatically when tracing or packet recording is on (their
    #: emission order is interleaved per node).  Excluded from the
    #: config identity hash.
    exact_batched: bool = True

    # ----------------------------------------------------------------- scale
    #: Per-node state budget.  ``"exact"`` keeps every float64 buffer the
    #: equivalence suite pins down; ``"diet"`` shrinks per-node state for
    #: very large topologies — float32 shading windows, aggressively
    #: compacted SoC traces, small pure-function memo caches, and packet
    #: / trace retention restricted to ``sample_nodes``.  Diet runs are
    #: deterministic (scalar ≡ vectorized) but not bit-identical to
    #: ``"exact"`` because shading factors round through float32.
    memory_profile: str = "exact"
    #: Node ids whose full per-node history (packet records, SoC traces)
    #: is retained even under the diet profile.  None means "retain
    #: everything" under ``"exact"`` and "retain counters only" under
    #: ``"diet"``.  Retention-only: never changes simulation results.
    sample_nodes: Optional[Tuple[int, ...]] = None
    #: Spatial sharding of the mesoscopic engine: partition the topology
    #: into gateway cells (nearest-gateway Voronoi) and simulate each
    #: cell independently with a per-cell contention domain plus a
    #: border-exchange pass for cross-cell interference (see
    #: docs/PERFORMANCE.md).  None keeps the classic single-domain
    #: engine.  The cell decomposition depends only on the topology, so
    #: any shard count from 1 to ``gateway_count`` produces identical
    #: results; the count only controls how many worker processes the
    #: cells are packed into.
    shards: Optional[int] = None

    # ------------------------------------------------------------ accounting
    #: How often the gateway recomputes and disseminates degradation.
    dissemination_interval_s: float = SECONDS_PER_DAY
    #: Record a per-packet :class:`~repro.sim.packetlog.PacketRecord`
    #: for every generated packet (debugging/analysis; costs memory).
    record_packets: bool = False
    #: RNG seed controlling topology, periods, channels and collisions.
    seed: int = 1

    # ------------------------------------------------------------ robustness
    #: Snapshot cadence in simulated seconds; the engines write a
    #: versioned, integrity-hashed checkpoint every this-many simulated
    #: seconds (see docs/ROBUSTNESS.md).  Both fields are excluded from
    #: the config identity hash — checkpoint settings never change
    #: simulation results.  None disables cadence checkpointing.
    checkpoint_every_s: Optional[float] = None
    #: Directory checkpoints are written to (required when
    #: ``checkpoint_every_s`` is set; also enables the final rescue
    #: snapshot on SIGINT/SIGTERM).
    checkpoint_dir: Optional[str] = None

    # --------------------------------------------------------- observability
    #: Publish structured :class:`~repro.obs.TraceEvent` records onto a
    #: per-run :class:`~repro.obs.TraceBus` (see docs/OBSERVABILITY.md).
    #: False keeps every emission guard dead — runs are bit-identical to
    #: an uninstrumented build.
    trace: bool = False
    #: Stream accepted trace events to this JSONL file (implies trace).
    trace_path: Optional[str] = None
    #: Restrict tracing to these categories (None = all); a subset of
    #: :data:`repro.obs.CATEGORIES`.
    trace_categories: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.node_count < 1:
            raise ConfigurationError("node_count must be >= 1")
        if self.radius_m <= 0:
            raise ConfigurationError("radius must be positive")
        if self.channel_count < 1:
            raise ConfigurationError("channel_count must be >= 1")
        if self.omega < 1:
            raise ConfigurationError("omega must be >= 1")
        if not 0.0 < self.soc_cap <= 1.0:
            raise ConfigurationError("soc_cap (θ) must be in (0, 1]")
        if not 0.0 <= self.w_b <= 1.0:
            raise ConfigurationError("w_b must be in [0, 1]")
        low, high = self.period_range_s
        if low <= 0 or high < low:
            raise ConfigurationError("invalid sampling-period range")
        if self.window_s <= 0 or self.window_s > low:
            raise ConfigurationError("window must be positive and fit in a period")
        if self.duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        if self.battery_sizing_factor <= 0:
            raise ConfigurationError("battery_sizing_factor must be positive")
        if not 0.0 <= self.initial_soc <= 1.0:
            raise ConfigurationError("initial_soc must be in [0, 1]")
        if self.initial_soc > self.soc_cap + 1e-12:
            raise ConfigurationError("initial SoC cannot exceed the θ cap")
        if self.max_retransmissions < 0:
            raise ConfigurationError("max_retransmissions cannot be negative")
        if self.start_jitter_s < 0:
            raise ConfigurationError("start_jitter_s cannot be negative")
        if self.gateway_count < 1:
            raise ConfigurationError("gateway_count must be >= 1")
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ConfigurationError("duty_cycle must be in (0, 1]")
        if self.forecaster not in ("oracle", "noisy", "persistence"):
            raise ConfigurationError(
                "forecaster must be 'oracle', 'noisy' or 'persistence'"
            )
        if self.w_u_ttl_s is not None and self.w_u_ttl_s <= 0:
            raise ConfigurationError("w_u_ttl_s must be positive")
        if self.compact_trace and not self.incremental_degradation:
            raise ConfigurationError(
                "compact_trace requires incremental_degradation: the batch "
                "refresh path re-reads the full SoC trace"
            )
        if self.memory_profile not in ("exact", "diet"):
            raise ConfigurationError(
                "memory_profile must be 'exact' or 'diet'"
            )
        if self.memory_profile == "diet" and not self.incremental_degradation:
            raise ConfigurationError(
                "memory_profile='diet' requires incremental_degradation: "
                "the batch refresh path re-reads the full SoC trace"
            )
        if self.sample_nodes is not None:
            normalized = tuple(sorted({int(n) for n in self.sample_nodes}))
            for node_id in normalized:
                if not 0 <= node_id < self.node_count:
                    raise ConfigurationError(
                        f"sample_nodes names node {node_id} but only "
                        f"{self.node_count} nodes exist"
                    )
            object.__setattr__(self, "sample_nodes", normalized)
        if self.shards is not None:
            if self.shards < 1:
                raise ConfigurationError("shards must be >= 1")
            if self.shards > self.gateway_count:
                raise ConfigurationError(
                    f"shards ({self.shards}) cannot exceed gateway_count "
                    f"({self.gateway_count}): shards are packed gateway cells"
                )
        if self.checkpoint_every_s is not None:
            if self.checkpoint_every_s <= 0:
                raise ConfigurationError("checkpoint_every_s must be positive")
            if self.checkpoint_dir is None:
                raise ConfigurationError(
                    "checkpoint_every_s requires checkpoint_dir"
                )
        if self.trace_categories is not None:
            from ..obs import CATEGORIES

            unknown = set(self.trace_categories) - set(CATEGORIES)
            if unknown:
                raise ConfigurationError(
                    f"unknown trace categories {sorted(unknown)}; "
                    f"expected a subset of {list(CATEGORIES)}"
                )
        if self.faults is not None:
            for reboot in self.faults.node_reboots:
                if reboot.node_id >= self.node_count:
                    raise ConfigurationError(
                        f"fault plan reboots node {reboot.node_id} but only "
                        f"{self.node_count} nodes exist"
                    )
            for outage in self.faults.gateway_outages:
                if (
                    outage.gateway_index is not None
                    and outage.gateway_index >= self.gateway_count
                ):
                    raise ConfigurationError(
                        f"fault plan names gateway {outage.gateway_index} but "
                        f"only {self.gateway_count} gateways exist"
                    )

    # --------------------------------------------------------------- derived

    def tx_params(self, sf: Optional[SpreadingFactor] = None) -> TxParams:
        """Transmission parameters for a node using ``sf`` (or the fixed SF)."""
        return TxParams(
            spreading_factor=sf or self.fixed_sf or SpreadingFactor.SF10,
            payload_bytes=self.payload_bytes,
            tx_power_dbm=self.tx_power_dbm,
        )

    def energy_model(self) -> EnergyModel:
        """The per-operation radio energy model."""
        return EnergyModel()

    def nominal_tx_energy_j(self, sf: Optional[SpreadingFactor] = None) -> float:
        """Single-attempt TX energy from Eq. (6) (no RX windows)."""
        return tx_energy(self.tx_params(sf))

    def attempt_energy_j(self, sf: Optional[SpreadingFactor] = None) -> float:
        """TX energy plus the two class-A receive windows."""
        return self.energy_model().tx_attempt_energy(self.tx_params(sf))

    def airtime_s(self, sf: Optional[SpreadingFactor] = None) -> float:
        """Eq. (7) time on air for this configuration's packet."""
        return time_on_air(self.tx_params(sf))

    def max_tx_energy_j(self) -> float:
        """``E^tx_max`` (worst-case SF12 transmission) for DIF scaling."""
        return self.energy_model().max_tx_energy(self.tx_params())

    def mean_period_s(self) -> float:
        """Midpoint of the sampling-period range."""
        low, high = self.period_range_s
        return (low + high) / 2.0

    def average_demand_w(self, sf: Optional[SpreadingFactor] = None) -> float:
        """Long-run average node power demand (sleep + periodic uplinks)."""
        model = self.energy_model()
        sleep = model.power_profile.sleep_watts
        per_period = self.attempt_energy_j(sf)
        return sleep + per_period / self.mean_period_s()

    def battery_capacity_j(self, sf: Optional[SpreadingFactor] = None) -> float:
        """Battery sized for ``sizing_factor × 24 h`` of average demand."""
        return (
            self.battery_sizing_factor
            * SECONDS_PER_DAY
            * self.average_demand_w(sf)
        )

    def solar_peak_watts(self, sf: Optional[SpreadingFactor] = None) -> float:
        """Panel peak sized for N transmissions per forecast window."""
        return (
            self.solar_peak_transmissions
            * self.nominal_tx_energy_j(sf)
            / self.window_s
        )

    def windows_per_period(self, period_s: float) -> int:
        """|T| — forecast windows available in one sampling period."""
        count = int(math.floor(period_s / self.window_s))
        return max(1, count)

    def replace(self, **changes) -> "SimulationConfig":
        """Return a modified copy (sweep helper)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------ scale

    @property
    def diet(self) -> bool:
        """Whether the shrunken-state memory profile is active."""
        return self.memory_profile == "diet"

    def effective_sample_nodes(self) -> Optional[frozenset]:
        """Node ids whose full history is retained; None = everything.

        ``sample_nodes`` always wins when given.  Otherwise the exact
        profile retains everything and the diet profile retains nothing
        beyond aggregate counters.
        """
        if self.sample_nodes is not None:
            return frozenset(self.sample_nodes)
        if self.memory_profile == "diet":
            return frozenset()
        return None

    def settle_chunk_s(self) -> float:
        """Energy-settling chunk length for the mesoscopic engine.

        The exact profile integrates harvest/sleep in 5-window chunks
        (the granularity the equivalence suite pins down).  The diet
        profile coarsens to 2-hour chunks (never finer than 5 windows):
        harvest midpoint sampling and SoC turning points track the
        diurnal cycle rather than every 5 minutes, trading a small,
        documented accuracy loss for an order of magnitude less settle
        work on 10k+-node topologies.  Scalar and vectorized sweeps
        share this value, so scalar ≡ vectorized holds in both profiles.
        """
        base = self.window_s * 5.0
        if self.memory_profile == "diet":
            return max(base, 7200.0)
        return base

    def effective_compact_trace(self) -> bool:
        """Whether SoC traces are compacted after degradation refreshes.

        Compaction is bit-identical to results (the incremental pipeline
        folds turning points as they close and the time-weighted mean is
        maintained online), so beyond the explicit ``compact_trace``
        flag it turns itself on for the diet profile and for any
        multi-month horizon, where retaining every turning point costs
        megabytes per node-year.
        """
        if not self.incremental_degradation:
            return False
        if self.compact_trace or self.memory_profile == "diet":
            return True
        return self.duration_s >= 180 * SECONDS_PER_DAY

    # --------------------------------------------------------- observability

    @property
    def tracing_enabled(self) -> bool:
        """Whether this config asks for event tracing (path implies it)."""
        return self.trace or self.trace_path is not None

    def build_observability(self) -> "object":
        """An :class:`~repro.obs.Observability` bundle for one run.

        Metrics and profiling are always on (they cost a handful of
        timer calls per run); the trace bus is built only when the
        config asks for tracing, keeping the hot-path guards dead
        otherwise.
        """
        from ..obs import Observability

        if not self.tracing_enabled:
            return Observability()
        return Observability.create(
            trace_path=self.trace_path, categories=self.trace_categories
        )

    # -------------------------------------------------------- named variants

    def as_lorawan(self) -> "SimulationConfig":
        """Plain LoRaWAN baseline: θ = 1, no window selection."""
        return self.replace(soc_cap=1.0, use_window_selection=False, initial_soc=1.0)

    def as_h(self, theta: float) -> "SimulationConfig":
        """H-θ: the full protocol at a given cap (H-50 → ``as_h(0.5)``)."""
        return self.replace(
            soc_cap=theta,
            use_window_selection=True,
            initial_soc=min(self.initial_soc, theta),
        )

    def as_hc(self, theta: float) -> "SimulationConfig":
        """H-θC: cap only, no window selection (paper's H-50C)."""
        return self.replace(
            soc_cap=theta,
            use_window_selection=False,
            initial_soc=min(self.initial_soc, theta),
        )

    @property
    def policy_name(self) -> str:
        """Human-readable policy label (LoRaWAN / H-x / H-xC)."""
        if self.soc_cap >= 1.0 and not self.use_window_selection:
            return "LoRaWAN"
        suffix = "" if self.use_window_selection else "C"
        return f"H-{round(self.soc_cap * 100)}{suffix}"
