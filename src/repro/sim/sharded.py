"""Gateway-cell sharded execution of the mesoscopic engine.

One 50k-node, multi-gateway topology does not fit one process: per-node
state (battery trace, rainflow stack, shading window, MAC estimators)
dominates memory, and a year-long sweep keeps all of it live.  This
module partitions the deployment spatially into *gateway cells* (each
node belongs to its nearest gateway) and simulates every cell as an
independent contention domain in a worker process, so peak RSS is
bounded by the coordinator plus the largest in-flight cell instead of
the whole network.

Semantics
---------
* A cell is one contention domain: its window resolutions draw from a
  per-cell RNG seeded by ``(config.seed, cell index)`` — a pure function
  of the topology, never of how cells were packed into processes.
  Delivery keeps full multi-gateway reception diversity (every node
  retains its RSSI at every gateway).
* Cross-cell interference at cell edges is restored by a two-round
  **border exchange**: round 1 simulates each cell in isolation and
  records the announced transmission schedule of *border nodes* (the
  strongest ``BORDER_TOP_K`` out-of-cell nodes audible at each cell's
  gateway); round 2 re-simulates the cells that received foreign
  announcements with those transmissions replayed as **static
  interferers** (they occupy demodulator slots and contribute
  co-channel/same-SF power but never retry).  This is a single
  fixed-point iteration — first-order border coupling, not an exact
  joint resolution — which matches the paper's own locality assumption
  that contention is dominated by the local window cohort.
* Because cell results depend only on (config, cell, foreign
  announcements) and announcements are produced per cell, the merged
  output is **invariant to the shard count**: ``shards=1`` and
  ``shards=gateway_count`` produce identical metrics, monthly series,
  linear rates and packet logs.

Execution flows through a **transport seam**: :class:`LocalTransport`
packs cells into local worker processes via the
:mod:`repro.sweep.executor` scheduler (crash/timeout retries included),
while :class:`repro.dist.DistTransport` leases the same cells to remote
``repro worker`` agents over TCP.  Either way, every simulated cell is
serialized to a per-cell JSONL artifact (:mod:`repro.dist.artifact`) in
a spill directory, and the coordinator merges those artifacts **lazily**
at finalize — one cell in memory at a time — so coordinator RSS never
scales with the total packet-log volume, and merged results are
placement-invariant by construction.

Cells checkpoint into ``<checkpoint_dir>/round<r>/cell_<c>`` (a pure
function of the topology, not of worker packing) and self-resume from
the newest snapshot after a crash.
"""

from __future__ import annotations

import math
import os
import random
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..checkpoint.core import latest_checkpoint, resume as _resume_checkpoint
from ..dist.artifact import (
    CellArtifact,
    artifact_complete,
    load_cell_artifact,
    write_cell_artifact,
)
from ..exceptions import (
    ConfigurationError,
    SimulationError,
    SimulationInterrupted,
)
from ..lora import LogDistanceLink, airtime_table
from ..obs import MetricsRegistry, Observability, RunManifest, config_hash
from .config import SimulationConfig
from .mesoscopic import (
    MesoscopicResult,
    MesoscopicSimulator,
    MonthlySample,
    StaticAttempt,
)
from .metrics import NetworkMetrics, NodeMetrics
from .packetlog import PacketLog
from .topology import NodePlacement, build_topology, partition_cells, pack_cells

#: Per receiving cell, only this many strongest foreign nodes (by RSSI
#: at the cell's gateway) are exchanged as border interferers.  Keeps
#: the announcement volume linear in the border length instead of the
#: network size; weaker foreign signals are below the capture margin
#: anyway.
BORDER_TOP_K = 64

#: A foreign node is audible at a gateway when its RSSI there is within
#: this margin below its own sensitivity — quieter signals cannot win a
#: demodulator slot or break capture at the receiving cell.
AUDIBILITY_MARGIN_DB = 6.0


# ----------------------------------------------------------- foreign input


class ForeignStatics:
    """Announced out-of-cell transmissions, replayed as static interference.

    Stored as parallel arrays sorted by ``(window, node_id)`` so a
    window's statics are one ``searchsorted`` slice.  Offsets are the
    announced in-window start for immediate (ALOHA) entries and NaN for
    window-selected entries, whose offset/channel are re-derived from a
    private RNG keyed on ``(seed, node_id, window)`` — deterministic,
    and decoupled from every cell's contention stream.
    """

    def __init__(
        self,
        windows: np.ndarray,
        node_ids: np.ndarray,
        offsets: np.ndarray,
        profiles: Dict[int, Tuple[float, object, Tuple[float, ...]]],
        seed: int,
        window_s: float,
        channel_count: int,
    ) -> None:
        order = np.lexsort((node_ids, windows))
        self.windows = np.ascontiguousarray(windows[order])
        self.node_ids = np.ascontiguousarray(node_ids[order])
        self.offsets = np.ascontiguousarray(offsets[order])
        #: node_id -> (airtime_s, spreading_factor, per-gateway mW tuple)
        self.profiles = profiles
        self.seed = seed
        self.window_s = window_s
        self.channel_count = channel_count

    def __len__(self) -> int:
        return int(self.windows.size)

    def statics_for(self, window_index: int) -> Sequence[StaticAttempt]:
        """The window's foreign transmissions as resolver statics."""
        lo = int(np.searchsorted(self.windows, window_index, side="left"))
        hi = int(np.searchsorted(self.windows, window_index, side="right"))
        if lo == hi:
            return ()
        statics: List[StaticAttempt] = []
        for i in range(lo, hi):
            node_id = int(self.node_ids[i])
            airtime, sf, lin_mw = self.profiles[node_id]
            draw = random.Random(
                (
                    self.seed * 0x9E3779B97F4A7C15
                    ^ node_id * 0xC2B2AE3D27D4EB4F
                    ^ window_index
                )
                & 0xFFFFFFFFFFFFFFFF
            )
            offset = float(self.offsets[i])
            if math.isnan(offset):
                offset = draw.uniform(0.0, max(1e-6, self.window_s - airtime))
            channel = draw.randrange(self.channel_count)
            statics.append(
                StaticAttempt(offset, offset + airtime, channel, sf, lin_mw)
            )
        return statics


# -------------------------------------------------------------- shard jobs


@dataclass
class ShardJob:
    """One worker process's slice of the topology for one round."""

    index: int
    round_no: int
    cells: List[int]
    placements_by_cell: Dict[int, List[NodePlacement]]
    export_by_cell: Dict[int, Optional[frozenset]]
    foreign_by_cell: Dict[int, Optional[ForeignStatics]]
    config: SimulationConfig
    #: Where each cell's result artifact must land (JSONL; see
    #: :mod:`repro.dist.artifact`).
    spill_by_cell: Dict[int, str] = field(default_factory=dict)
    #: Per-cell checkpoint directory (``<ckpt>/round<r>/cell_<c>``); a
    #: pure function of the topology so resume never depends on packing.
    ckpt_by_cell: Dict[int, Optional[str]] = field(default_factory=dict)


@dataclass
class CellOutcome:
    """The slim per-cell summary the coordinator keeps in memory.

    The heavy payload (metrics, monthly, packet rows) lives in the
    cell's spilled artifact; the outcome carries only what the next
    round and the manifest need.
    """

    cell_index: int
    events_executed: int
    peak_heap: int
    #: (absolute_window, node_id, offset | nan) announcements as arrays.
    intent_windows: Optional[np.ndarray] = None
    intent_nodes: Optional[np.ndarray] = None
    intent_offsets: Optional[np.ndarray] = None


def outcome_from_artifact(artifact: CellArtifact) -> CellOutcome:
    """A :class:`CellOutcome` re-derived from a spilled artifact."""
    return CellOutcome(
        cell_index=artifact.cell_index,
        events_executed=artifact.events_executed,
        peak_heap=artifact.peak_heap,
        intent_windows=artifact.intent_windows,
        intent_nodes=artifact.intent_nodes,
        intent_offsets=artifact.intent_offsets,
    )


@dataclass
class ShardRecord:
    """Scheduler-facing outcome of one shard attempt."""

    index: int
    status: str  # "completed" | "resumed" | "failed" | "timeout"
    cells: List[CellOutcome] = field(default_factory=list)
    error: Optional[str] = None
    attempts: int = 1
    wall_s: float = 0.0
    peak_rss_kb: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.status in ("completed", "resumed")


def _shard_failure(
    job: ShardJob, engine: str, status: str, attempts: int, error: str
) -> ShardRecord:
    """Record for a shard whose every attempt crashed or timed out."""
    return ShardRecord(
        index=job.index, status=status, attempts=attempts, error=error
    )


def _cell_config(
    config: SimulationConfig, cell_dir: Optional[str]
) -> SimulationConfig:
    """The per-cell simulator config (plain mesoscopic, own snapshots)."""
    cell_config = config.replace(shards=None)
    if cell_dir is not None:
        cell_config = cell_config.replace(checkpoint_dir=cell_dir)
    return cell_config


def simulate_cell(
    config: SimulationConfig,
    cell: int,
    placements: List[NodePlacement],
    export_nodes: Optional[frozenset],
    foreign: Optional[ForeignStatics],
    ckpt_dir: Optional[str],
    round_no: int,
) -> Tuple[CellArtifact, CellOutcome]:
    """Simulate one cell (resuming from its newest snapshot if any)."""
    if ckpt_dir is not None:
        os.makedirs(ckpt_dir, exist_ok=True)
    cell_config = _cell_config(config, ckpt_dir)
    snapshot = latest_checkpoint(ckpt_dir) if ckpt_dir is not None else None
    if snapshot is not None:
        sim, _header = _resume_checkpoint(
            snapshot, expected_config_hash=config_hash(cell_config)
        )
    else:
        sim = MesoscopicSimulator(
            cell_config,
            placements=placements,
            cell_index=cell,
            export_nodes=export_nodes,
            foreign=foreign,
        )
    result = sim.run()
    intents = sim.border_intents
    artifact = CellArtifact(
        cell_index=cell,
        round_no=round_no,
        events_executed=sim._events_executed,
        peak_heap=sim._peak_heap,
        metrics=result.metrics.nodes,
        monthly=result.monthly,
        linear_rates=result.linear_rates,
        packet_log=result.packet_log,
    )
    if intents:
        artifact.intent_windows = np.array(
            [i[0] for i in intents], dtype=np.int64
        )
        artifact.intent_nodes = np.array(
            [i[1] for i in intents], dtype=np.int64
        )
        artifact.intent_offsets = np.array(
            [i[2] for i in intents], dtype=np.float64
        )
    return artifact, outcome_from_artifact(artifact)


def _execute_shard(
    job: ShardJob, run_dir: Optional[str], checkpoint_every_s: Optional[float]
) -> ShardRecord:
    """Simulate every cell of one shard job (the worker function).

    Cells run sequentially so worker memory is bounded by one cell.
    Each cell checkpoints into its own topology-keyed directory and
    self-resumes from the newest snapshot; a cell whose spilled artifact
    is already complete (an earlier attempt finished it before the
    worker died) is skipped entirely — its outcome is re-read from the
    artifact — so a retried shard replays only the cell it died in.
    """
    record = ShardRecord(index=job.index, status="completed")
    started = time.perf_counter()
    for cell in job.cells:
        spill_path = job.spill_by_cell[cell]
        if artifact_complete(spill_path):
            record.cells.append(
                outcome_from_artifact(load_cell_artifact(spill_path, skim=True))
            )
            continue
        artifact, outcome = simulate_cell(
            job.config,
            cell,
            job.placements_by_cell[cell],
            job.export_by_cell.get(cell),
            job.foreign_by_cell.get(cell),
            job.ckpt_by_cell.get(cell),
            job.round_no,
        )
        write_cell_artifact(spill_path, artifact)
        record.cells.append(outcome)
    record.wall_s = time.perf_counter() - started
    try:
        import resource

        record.peak_rss_kb = int(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        )
    except (ImportError, OSError):  # pragma: no cover - non-POSIX hosts
        record.peak_rss_kb = None
    return record


def _shard_worker_main(
    conn,
    job: ShardJob,
    engine: str,
    run_dir: Optional[str],
    checkpoint_every_s: Optional[float],
    resume_from: Optional[str],
    crash_after_saves: Optional[int],
    trace_dir: Optional[str] = None,
) -> None:
    """Entry point of one shard worker process.

    Same contract as ``repro.sweep.executor._worker_main``: install the
    graceful-stop handlers, optionally arm the deterministic crash
    hook, ship the record (or the interrupt) back over the pipe.
    ``resume_from`` is ignored — shards self-resume per cell from the
    newest snapshot in their topology-keyed checkpoint directory.
    """
    from ..checkpoint import core as _ckpt_core
    from ..checkpoint import interrupt as _interrupt

    _interrupt.install()
    if crash_after_saves is not None:
        saves = {"n": 0}

        def _crash_hook(path: str, time_s: float) -> None:
            saves["n"] += 1
            if saves["n"] >= crash_after_saves:
                os.kill(os.getpid(), 9)  # SIGKILL: a real crash, no cleanup

        _ckpt_core._post_save_hook = _crash_hook
    try:
        record = _execute_shard(job, run_dir, checkpoint_every_s)
        conn.send(("record", record))
    except SimulationInterrupted as exc:
        conn.send(("interrupted", exc.checkpoint_path))
    finally:
        conn.close()


# ------------------------------------------------------------- border sets


def _node_rssi_matrix(
    config: SimulationConfig,
    placements: List[NodePlacement],
    link: LogDistanceLink,
) -> Dict[int, List[float]]:
    """Per-node RSSI at every gateway, with MesoNode's exact formula."""
    rssi: Dict[int, List[float]] = {}
    for placement in placements:
        params = config.tx_params(placement.spreading_factor)
        rssi[placement.node_id] = [
            link.rssi_dbm(
                params.tx_power_dbm,
                distance,
                antenna_gain_db=config.gateway_antenna_gain_db,
            )
            for distance in placement.gateway_distances_m
        ]
    return rssi


def _border_maps(
    config: SimulationConfig,
    placements: List[NodePlacement],
    cells: Dict[int, List[NodePlacement]],
    link: LogDistanceLink,
) -> Tuple[
    Dict[int, frozenset],
    Dict[int, frozenset],
    Dict[int, Tuple[float, object, Tuple[float, ...]]],
]:
    """Who interferes across cell borders.

    Returns ``(selected_by_cell, export_by_cell, profiles)``:
    ``selected_by_cell[c]`` is the set of foreign node ids whose
    transmissions cell ``c`` must hear; ``export_by_cell[s]`` is the set
    of cell ``s``'s nodes any other cell selected (what ``s``
    announces); ``profiles`` carries the static PHY facts of every
    selected node.  All three are pure functions of the topology.
    """
    rssi = _node_rssi_matrix(config, placements, link)
    by_node = {p.node_id: p for p in placements}
    cell_of_node = {
        p.node_id: cell for cell, members in cells.items() for p in members
    }
    selected_by_cell: Dict[int, frozenset] = {}
    export_sets: Dict[int, set] = {cell: set() for cell in cells}
    needed: set = set()
    for cell in cells:
        candidates: List[Tuple[float, int]] = []
        for placement in placements:
            node_id = placement.node_id
            if cell_of_node[node_id] == cell:
                continue
            level = rssi[node_id][cell]
            params = config.tx_params(placement.spreading_factor)
            if level >= params.sensitivity_dbm - AUDIBILITY_MARGIN_DB:
                candidates.append((-level, node_id))
        candidates.sort()
        chosen = frozenset(
            node_id for _, node_id in candidates[:BORDER_TOP_K]
        )
        selected_by_cell[cell] = chosen
        needed.update(chosen)
        for node_id in chosen:
            export_sets[cell_of_node[node_id]].add(node_id)
    profiles: Dict[int, Tuple[float, object, Tuple[float, ...]]] = {}
    energy_model = config.energy_model()
    table = airtime_table(energy_model)
    for node_id in needed:
        placement = by_node[node_id]
        params = config.tx_params(placement.spreading_factor)
        profiles[node_id] = (
            table.entry(params).airtime_s,
            placement.spreading_factor,
            tuple(10.0 ** (level / 10.0) for level in rssi[node_id]),
        )
    export_by_cell = {
        cell: frozenset(nodes) for cell, nodes in export_sets.items()
    }
    return selected_by_cell, export_by_cell, profiles


# ---------------------------------------------------------- transport seam


@dataclass
class RoundRequest:
    """Everything a transport needs to run one round of cells.

    Both transports consume the same request and fulfil the same
    contract: simulate every listed cell, leave its complete artifact
    at ``spill_by_cell[cell]``, and return a ``CellOutcome`` per cell.
    """

    round_no: int
    config: SimulationConfig
    cell_ids: List[int]
    placements_by_cell: Dict[int, List[NodePlacement]]
    export_by_cell: Dict[int, Optional[frozenset]]
    foreign_by_cell: Dict[int, Optional[ForeignStatics]]
    spill_by_cell: Dict[int, str]
    ckpt_by_cell: Dict[int, Optional[str]]
    shard_count: int
    registry: MetricsRegistry


class LocalTransport:
    """Run rounds in local worker processes over multiprocessing pipes.

    Reuses the :mod:`repro.sweep.executor` scheduler for its process
    pool, crash/timeout retries and graceful-interrupt plumbing.
    """

    def __init__(
        self,
        workers: int = 1,
        max_retries: int = 1,
        crash_spec=None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        self.workers = workers
        self.max_retries = max_retries
        self.crash_spec = crash_spec

    def run_round(self, request: RoundRequest) -> Dict[int, CellOutcome]:
        from ..checkpoint.interrupt import last_signal
        from ..sweep.executor import _Scheduler

        jobs: List[ShardJob] = []
        packed = pack_cells(
            request.cell_ids,
            min(request.shard_count, len(request.cell_ids)),
        )
        for index, group in enumerate(packed):
            jobs.append(
                ShardJob(
                    index=index,
                    round_no=request.round_no,
                    cells=group,
                    placements_by_cell={
                        c: request.placements_by_cell[c] for c in group
                    },
                    export_by_cell={
                        c: request.export_by_cell.get(c) for c in group
                    },
                    foreign_by_cell={
                        c: request.foreign_by_cell.get(c) for c in group
                    },
                    config=request.config,
                    spill_by_cell={
                        c: request.spill_by_cell[c] for c in group
                    },
                    ckpt_by_cell={
                        c: request.ckpt_by_cell.get(c) for c in group
                    },
                )
            )
        scheduler = _Scheduler(
            engine="meso",
            workers=self.workers,
            registry=request.registry,
            timeout_s=None,
            max_retries=self.max_retries,
            checkpoint_dir=None,
            checkpoint_every_s=request.config.checkpoint_every_s,
            crash_spec=self.crash_spec,
            worker_main=_shard_worker_main,
            failure_factory=_shard_failure,
        )
        records, interrupted = scheduler.run(jobs)
        if interrupted:
            raise SimulationInterrupted(
                "sharded mesoscopic run stopped by signal",
                signum=last_signal(),
            )
        outcomes: Dict[int, CellOutcome] = {}
        for record in records.values():
            if not record.ok:
                raise SimulationError(
                    f"shard {record.index} {record.status} after "
                    f"{record.attempts} attempt(s): {record.error}"
                )
            for outcome in record.cells:
                outcomes[outcome.cell_index] = outcome
        return outcomes


# -------------------------------------------------------------- coordinator


def _foreign_for_cell(
    cell: int,
    selected: frozenset,
    outcomes: Dict[int, CellOutcome],
    profiles,
    config: SimulationConfig,
) -> Optional[ForeignStatics]:
    """Assemble one cell's foreign input from the round-1 announcements."""
    if not selected:
        return None
    windows: List[np.ndarray] = []
    nodes: List[np.ndarray] = []
    offsets: List[np.ndarray] = []
    wanted = np.array(sorted(selected), dtype=np.int64)
    for source_cell in sorted(outcomes):
        if source_cell == cell:
            continue
        source = outcomes[source_cell]
        if source.intent_windows is None:
            continue
        mask = np.isin(source.intent_nodes, wanted)
        if not mask.any():
            continue
        windows.append(source.intent_windows[mask])
        nodes.append(source.intent_nodes[mask])
        offsets.append(source.intent_offsets[mask])
    if not windows:
        return None
    return ForeignStatics(
        windows=np.concatenate(windows),
        node_ids=np.concatenate(nodes),
        offsets=np.concatenate(offsets),
        profiles=profiles,
        seed=config.seed,
        window_s=config.window_s,
        channel_count=config.channel_count,
    )


def _merge_monthly(
    parts: List[Tuple[int, List[MonthlySample]]]
) -> List[MonthlySample]:
    """Network monthly series from per-cell series (exact max / mean)."""
    acc: Dict[int, List[float]] = {}
    for weight, samples in parts:
        for sample in samples:
            entry = acc.setdefault(sample.month, [-math.inf, 0.0, 0])
            entry[0] = max(entry[0], sample.max_degradation)
            entry[1] += sample.mean_degradation * weight
            entry[2] += weight
    return [
        MonthlySample(
            month=month,
            max_degradation=acc[month][0],
            mean_degradation=acc[month][1] / acc[month][2],
        )
        for month in sorted(acc)
    ]


def _spill_path(spill_root: str, round_no: int, cell: int) -> str:
    return os.path.join(
        spill_root, f"round{round_no}", f"cell_{cell:04d}.jsonl"
    )


def _ckpt_path(
    base_dir: Optional[str], round_no: int, cell: int
) -> Optional[str]:
    if base_dir is None:
        return None
    return os.path.join(base_dir, f"round{round_no}", f"cell_{cell:04d}")


def run_sharded(
    config: SimulationConfig,
    obs: Optional[Observability] = None,
    workers: int = 1,
    max_retries: int = 1,
    crash_spec=None,
    transport=None,
    spill_dir: Optional[str] = None,
) -> MesoscopicResult:
    """Run ``config`` sharded by gateway cell; merge into one result.

    ``workers`` bounds concurrent shard processes (1 = strict memory
    isolation: coordinator + one cell at a time).  Shard crashes and
    timeouts retry up to ``max_retries`` times, resuming from per-cell
    checkpoints when checkpointing is configured.

    ``transport`` selects how cells execute: None builds a
    :class:`LocalTransport` from ``workers``/``max_retries``/
    ``crash_spec``; a :class:`repro.dist.DistTransport` leases cells to
    remote ``repro worker`` agents instead.  Results are identical
    either way.  ``spill_dir`` hosts the per-cell artifacts (a private
    temp directory, deleted afterwards, when None).
    """
    if config.shards is None:
        raise ConfigurationError("config.shards must be set for run_sharded")
    if config.tracing_enabled:
        raise ConfigurationError(
            "sharded execution does not support event tracing; run with "
            "shards=None (or trace off) instead"
        )
    if transport is None:
        transport = LocalTransport(
            workers=workers, max_retries=max_retries, crash_spec=crash_spec
        )
    obs = obs if obs is not None else config.build_observability()
    duration = config.duration_s

    with obs.profiler.phase("build"):
        link = LogDistanceLink(path_loss_exponent=config.path_loss_exponent)
        placements = build_topology(config, link)
        cells = partition_cells(placements)
        selected_by_cell, export_by_cell, profiles = _border_maps(
            config, placements, cells, link
        )
        shard_count = min(config.shards, len(cells))

    owns_spill = spill_dir is None
    spill_root = (
        tempfile.mkdtemp(prefix="repro-spill-") if owns_spill else spill_dir
    )
    os.makedirs(spill_root, exist_ok=True)
    base_dir = config.checkpoint_dir

    def make_request(
        round_no: int,
        cell_subset: List[int],
        foreign_by_cell: Dict[int, Optional[ForeignStatics]],
        with_exports: bool,
    ) -> RoundRequest:
        return RoundRequest(
            round_no=round_no,
            config=config,
            cell_ids=sorted(cell_subset),
            placements_by_cell={c: cells[c] for c in cell_subset},
            export_by_cell={
                c: ((export_by_cell[c] or None) if with_exports else None)
                for c in cell_subset
            },
            foreign_by_cell=foreign_by_cell,
            spill_by_cell={
                c: _spill_path(spill_root, round_no, c) for c in cell_subset
            },
            ckpt_by_cell={
                c: _ckpt_path(base_dir, round_no, c) for c in cell_subset
            },
            shard_count=shard_count,
            registry=obs.metrics,
        )

    try:
        with obs.profiler.phase("run"):
            request1 = make_request(1, list(cells), {}, with_exports=True)
            outcomes = transport.run_round(request1)

            # Round 2: re-simulate cells that actually received foreign
            # announcements, with those transmissions as static
            # interferers.
            foreign_by_cell: Dict[int, Optional[ForeignStatics]] = {}
            for cell in cells:
                foreign_by_cell[cell] = _foreign_for_cell(
                    cell, selected_by_cell[cell], outcomes, profiles, config
                )
            redo = [
                cell for cell in cells if foreign_by_cell[cell] is not None
            ]
            final_round = {cell: 1 for cell in cells}
            if redo:
                request2 = make_request(
                    2, redo, foreign_by_cell, with_exports=False
                )
                outcomes2 = transport.run_round(request2)
                for cell, outcome in outcomes2.items():
                    outcomes[cell] = outcome
                    final_round[cell] = 2

        with obs.profiler.phase("finalize"):
            merged_metrics: Dict[int, NodeMetrics] = {}
            linear_rates: Dict[int, float] = {}
            monthly_parts: List[Tuple[int, List[MonthlySample]]] = []
            events = 0
            peak = 0
            merge_peak_rows = 0
            packet_log = (
                PacketLog(sample_nodes=config.effective_sample_nodes())
                if config.record_packets
                else None
            )
            # Lazy merge: one cell's artifact in memory at a time, so
            # coordinator RSS is bounded by the largest cell plus the
            # (sampled, capacity-capped) merged log — never the sum of
            # all cells' packet rows.
            for cell in sorted(cells):
                artifact = load_cell_artifact(
                    _spill_path(spill_root, final_round[cell], cell)
                )
                merged_metrics.update(artifact.metrics)
                linear_rates.update(artifact.linear_rates)
                monthly_parts.append((len(artifact.metrics), artifact.monthly))
                events += artifact.events_executed
                peak = max(peak, artifact.peak_heap)
                if packet_log is not None and artifact.packet_log is not None:
                    merge_peak_rows = max(
                        merge_peak_rows, len(artifact.packet_log)
                    )
                    packet_log.merge(artifact.packet_log)
            metrics = NetworkMetrics(
                nodes={
                    nid: merged_metrics[nid] for nid in sorted(merged_metrics)
                }
            )
            metrics.publish(obs.metrics)
            obs.metrics.counter(
                "events_executed_total",
                "Heap events executed by the mesoscopic sweep",
            ).inc(events)
            obs.metrics.gauge(
                "event_queue_peak_depth",
                "Peak depth of the period/resolve heap",
            ).set(peak)
            obs.metrics.gauge(
                "merge_peak_rows",
                "Largest single-cell packet-log row count held in memory "
                "during the lazy artifact merge",
            ).set(merge_peak_rows)
            monthly = _merge_monthly(monthly_parts)
    finally:
        if owns_spill:
            shutil.rmtree(spill_root, ignore_errors=True)

    manifest = RunManifest(
        engine="mesoscopic-sharded",
        seed=config.seed,
        config_hash=config_hash(config),
        node_count=len(merged_metrics),
        duration_s=duration,
        policy=config.policy_name,
        events_executed=events,
        peak_queue_depth=peak,
    )
    manifest.finalize(obs.profiler, simulated_s=duration)
    obs.close()
    return MesoscopicResult(
        config=config,
        metrics=metrics,
        monthly=monthly,
        linear_rates=linear_rates,
        simulated_s=duration,
        packet_log=packet_log,
        manifest=manifest,
        obs=obs,
    )
