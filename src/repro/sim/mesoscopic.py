"""Mesoscopic simulator for multi-year, hundreds-of-nodes horizons.

The exact engine spends one heap event per transmission attempt, which is
prohibitive for the paper's 5-15-year, 500-node runs.  This runner keeps
per-*period* granularity globally and resolves channel contention
*exactly but locally* inside each forecast window:

* Decisions (Algorithm 1 / ALOHA) happen at period starts, like the
  paper's protocol.
* All transmissions that chose the same absolute forecast window are
  resolved together by a miniature, exact sub-simulation of that window
  (offsets, airtime overlap, capture, the ω demodulator limit, and
  LMIC-style retransmission backoff) — cross-window interaction is
  neglected, which is the paper's own assumption ("transmissions on one
  forecast window have a negligible effect on transmissions in other
  forecast windows").
* Battery SoC is settled through the software-defined switch in coarse
  chunks, preserving turning points for the rainflow computation.

For horizons beyond the simulated window the runner extrapolates the
*linear* degradation ``D_L`` (calendar ∝ age, cycles accrue at a steady
rate under stationary operation) and applies the nonlinear map of
Eq. (4) — the same observation the paper uses when it notes per-day
degradation changes of 0.001-0.0001.
"""

from __future__ import annotations

import heapq
import math
import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..battery import Battery, DegradationModel
from ..checkpoint.core import save_checkpoint
from ..checkpoint.interrupt import last_signal, stop_requested
from ..constants import SECONDS_PER_DAY, SECONDS_PER_YEAR
from ..core import DegradationService, MacPolicy, PeriodContext
from ..exceptions import ConfigurationError, SimulationInterrupted
from ..energy import (
    CloudProcess,
    Harvester,
    SoftwareDefinedSwitch,
    SolarModel,
)
from ..kernels import emit_startup_notice
from ..lora import LogDistanceLink, airtime_table
from ..obs import Observability, RunManifest, config_hash, git_revision
from .config import SimulationConfig
from .engine import build_forecaster, build_mac
from .metrics import NetworkMetrics, NodeMetrics
from .packetlog import PacketLog, PacketRecord
from .topology import NodePlacement, build_topology


@dataclass(slots=True)
class WindowEntry:
    """One node's planned transmission inside an absolute window."""

    node: "MesoNode"
    immediate: bool
    window_index_in_period: int
    period_start_s: float
    decision: object = None
    #: For immediate (ALOHA) entries: where within the grid window the
    #: transmission actually starts (0 for perfectly synchronized boots,
    #: the boot jitter otherwise).  Window-selected entries randomize.
    offset_in_window_s: float = 0.0


@dataclass
class WindowOutcome:
    """Result of resolving one node's transmission in a window."""

    attempts: int
    success: bool
    finish_offset_s: float


class StaticAttempt:
    """A frozen foreign transmission injected into a window resolution.

    The sharded engine's border exchange replays the announced schedule
    of strong out-of-cell nodes as *static* interference: a static
    occupies a demodulator slot and contributes co-channel/same-SF
    power, but never retries and receives no outcome.  Its received
    power is pre-linearized (``10 ** (rssi / 10)``, a pure function of
    the static RSSI, so the sums stay bit-identical to inline
    exponentiation).
    """

    __slots__ = ("start_s", "end_s", "channel", "spreading_factor", "lin_mw")

    def __init__(
        self,
        start_s: float,
        end_s: float,
        channel: int,
        spreading_factor,
        lin_mw: Sequence[float],
    ) -> None:
        self.start_s = start_s
        self.end_s = end_s
        self.channel = channel
        self.spreading_factor = spreading_factor
        self.lin_mw = lin_mw


class Attempt:
    """One scheduled transmission attempt inside a window resolution.

    Module-level ``__slots__`` class rather than a dataclass defined
    inside :func:`resolve_window`: the function runs once per contended
    window for the whole horizon, and rebuilding the dataclass machinery
    per call dominated its profile.
    """

    __slots__ = ("start_s", "entry", "attempt_no", "channel")

    def __init__(
        self, start_s: float, entry: WindowEntry, attempt_no: int, channel: int
    ) -> None:
        self.start_s = start_s
        self.entry = entry
        self.attempt_no = attempt_no
        self.channel = channel


class MesoNode:
    """Per-node state for the mesoscopic runner."""

    def __init__(
        self,
        placement: NodePlacement,
        config: SimulationConfig,
        clouds: CloudProcess,
        link: LogDistanceLink,
        trace=None,
    ) -> None:
        self.placement = placement
        self.config = config
        params = config.tx_params(placement.spreading_factor)
        self.tx_params = params
        energy_model = config.energy_model()
        phy = airtime_table(energy_model).entry(params)
        self.airtime_s = phy.airtime_s
        self.tx_energy_j = phy.tx_energy_j
        self.attempt_energy_j = phy.attempt_energy_j
        self.sleep_watts = energy_model.power_profile.sleep_watts
        capacity = config.battery_capacity_j(placement.spreading_factor)
        self.battery = Battery(
            capacity_j=capacity,
            initial_soc=config.initial_soc,
            temperature_c=config.temperature_c,
            incremental=config.incremental_degradation,
            # Diet: small pure-function stress caches (bit-identical).
            memo_limit=4096 if config.diet else None,
        )
        solar = SolarModel(peak_watts=config.solar_peak_watts(), clouds=clouds)
        self.harvester = Harvester(
            solar=solar,
            node_seed=config.seed * 10_007 + placement.node_id,
            shading_sigma=config.shading_sigma,
            diet=config.diet,
        )
        self.forecaster = build_forecaster(config, self.harvester, placement.node_id)
        self.mac: MacPolicy = build_mac(config, capacity, self.attempt_energy_j)
        self.switch = SoftwareDefinedSwitch(soc_cap=self.mac.soc_cap)
        self.trace = trace
        if trace is not None:
            self.mac.bind_trace(trace, placement.node_id)
            self.battery.bind_trace(trace, placement.node_id)
            self.switch.bind_trace(trace, placement.node_id)
        #: Received power at each gateway; an uplink is delivered if any
        #: gateway decodes it.
        self.rssi_by_gateway = [
            link.rssi_dbm(
                params.tx_power_dbm,
                distance,
                antenna_gain_db=config.gateway_antenna_gain_db,
            )
            for distance in placement.gateway_distances_m
        ]
        self.rssi_dbm = max(self.rssi_by_gateway)
        self.sensitivity_dbm = params.sensitivity_dbm
        self.rng = random.Random(config.seed * 7919 + placement.node_id)
        self.metrics = NodeMetrics(
            node_id=placement.node_id, period_s=placement.period_s
        )
        self.settled_until_s = 0.0

    @property
    def node_id(self) -> int:
        """The node's network identifier."""
        return self.placement.node_id

    @property
    def windows_per_period(self) -> int:
        """|T| — forecast windows available per sampling period."""
        return max(1, int(self.placement.period_s // self.config.window_s))

    def settle_to(self, now_s: float, extra_demand_j: float = 0.0) -> float:
        """Advance energy state to ``now_s``; returns unmet demand.

        Harvest and sleep demand are applied in coarse chunks through the
        switch; ``extra_demand_j`` (transmission energy) lands in the
        final chunk.  The chunk length comes from the memory profile
        (5 windows exact, 120 windows diet) and keeps the trace small
        while preserving charge/discharge turning points.
        """
        # A window resolution can settle a node slightly past a refresh
        # or end-of-run boundary; later settles clamp to the frontier.
        now_s = max(now_s, self.settled_until_s)
        chunk_s = self.config.settle_chunk_s()
        cursor = self.settled_until_s
        shortfall = 0.0
        while cursor < now_s - 1e-9:
            chunk_end = min(now_s, cursor + chunk_s)
            duration = chunk_end - cursor
            harvested = self.harvester.power_watts(cursor + duration / 2.0) * duration
            demand = self.sleep_watts * duration
            if chunk_end >= now_s - 1e-9:
                demand += extra_demand_j
            result = self.switch.apply_window(
                self.battery, harvested, demand, chunk_end
            )
            shortfall += result.shortfall_j
            cursor = chunk_end
        if now_s <= self.settled_until_s + 1e-9 and extra_demand_j > 0:
            # Settling to the same instant: apply the demand directly.
            result = self.switch.apply_window(
                self.battery, 0.0, extra_demand_j, self.settled_until_s
            )
            shortfall += result.shortfall_j
        self.settled_until_s = max(self.settled_until_s, now_s)
        return shortfall


def resolve_window(
    entries: List[WindowEntry],
    window_s: float,
    channel_count: int,
    omega: int,
    max_retransmissions: int,
    rng: random.Random,
    capture_threshold_db: float = 6.0,
    static_attempts: Sequence[StaticAttempt] = (),
) -> Dict[int, WindowOutcome]:
    """Exactly resolve contention among transmissions sharing a window.

    Immediate (ALOHA) entries start at offset 0; window-selected entries
    start at a uniform random offset.  Failed attempts retry after the
    class-A receive windows plus a 1-3 s jitter, up to the LoRa limit.
    Attempt overlap is resolved pairwise on channel (+SF) with capture;
    more than ω concurrent transmissions saturate the demodulators.

    ``static_attempts`` (border exchange) add one-shot foreign
    interference: they count toward ω concurrency and co-channel
    same-SF power but never retry and get no outcomes.  They consume no
    RNG draws, and they are accumulated *before* the live universe so
    the vectorized resolver can reproduce the float sums exactly.
    """
    if not entries:
        return {}

    def overlaps(a_start: float, a_end: float, b_start: float, b_end: float) -> bool:
        return a_start < b_end and b_start < a_end

    outcomes: Dict[int, WindowOutcome] = {}
    pending: List[Tuple[Attempt, float]] = []  # (attempt, end_s)
    for entry in entries:
        if entry.immediate:
            offset = entry.offset_in_window_s
        else:
            offset = rng.uniform(0.0, max(1e-6, window_s - entry.node.airtime_s))
        attempt = Attempt(
            start_s=offset,
            entry=entry,
            attempt_no=0,
            channel=rng.randrange(channel_count),
        )
        pending.append((attempt, offset + entry.node.airtime_s))

    # Iteratively resolve rounds: collisions among currently scheduled
    # attempts may spawn retries, which can collide again.
    resolved: List[Tuple[Attempt, float, bool]] = []
    while pending:
        # Pairwise collision resolution for this batch plus everything
        # already resolved (earlier attempts can overlap later ones).
        batch = sorted(pending, key=lambda item: item[0].start_s)
        universe = [(a, e) for a, e, _ in resolved] + batch
        survived: List[Tuple[Attempt, float, bool]] = []
        for attempt, end_s in batch:
            node = attempt.entry.node
            gateways = len(node.rssi_by_gateway)
            interferers_mw = [0.0] * gateways
            concurrent = 0
            for static in static_attempts:
                if not overlaps(
                    attempt.start_s, end_s, static.start_s, static.end_s
                ):
                    continue
                concurrent += 1
                if (
                    static.channel == attempt.channel
                    and static.spreading_factor
                    == node.tx_params.spreading_factor
                ):
                    for g in range(gateways):
                        interferers_mw[g] += static.lin_mw[g]
            for other, other_end in universe:
                if other is attempt:
                    continue
                if not overlaps(attempt.start_s, end_s, other.start_s, other_end):
                    continue
                concurrent += 1
                other_node = other.entry.node
                if (
                    other.channel == attempt.channel
                    and other_node.tx_params.spreading_factor
                    == node.tx_params.spreading_factor
                ):
                    for g in range(gateways):
                        interferers_mw[g] += 10.0 ** (
                            other_node.rssi_by_gateway[g] / 10.0
                        )
            # Delivered if any gateway hears it above sensitivity, with
            # a free demodulator, and clear of co-channel interference.
            ok = False
            if concurrent + 1 <= omega:
                for g in range(gateways):
                    rssi = node.rssi_by_gateway[g]
                    if rssi < node.sensitivity_dbm:
                        continue
                    if interferers_mw[g] == 0.0:
                        ok = True
                        break
                    sir_db = rssi - 10.0 * math.log10(interferers_mw[g])
                    if sir_db >= capture_threshold_db:
                        ok = True
                        break
            survived.append((attempt, end_s, ok))
        resolved.extend(survived)
        # Spawn retries for failures.
        pending = []
        for attempt, end_s, ok in survived:
            if ok:
                continue
            if attempt.attempt_no >= max_retransmissions:
                continue
            node = attempt.entry.node
            backoff = 2.0 + rng.uniform(1.0, 3.0)
            retry = Attempt(
                start_s=end_s + backoff,
                entry=attempt.entry,
                attempt_no=attempt.attempt_no + 1,
                channel=rng.randrange(channel_count),
            )
            pending.append((retry, retry.start_s + node.airtime_s))

    # Aggregate per node: first successful attempt wins.
    per_node: Dict[int, List[Tuple[Attempt, float, bool]]] = {}
    for attempt, end_s, ok in resolved:
        per_node.setdefault(attempt.entry.node.node_id, []).append(
            (attempt, end_s, ok)
        )
    for node_id, items in per_node.items():
        items.sort(key=lambda item: item[0].attempt_no)
        attempts_used = 0
        success = False
        finish = items[-1][1]
        for attempt, end_s, ok in items:
            attempts_used = attempt.attempt_no + 1
            if ok:
                success = True
                finish = end_s
                break
        outcomes[node_id] = WindowOutcome(
            attempts=attempts_used, success=success, finish_offset_s=finish
        )
    return outcomes


@dataclass
class MonthlySample:
    """Network degradation snapshot at a month boundary."""

    month: int
    max_degradation: float
    mean_degradation: float


@dataclass
class _SweepState:
    """The chronological sweep's complete progress, hoisted for snapshots.

    Both the scalar and vectorized sweeps read their loop state from
    (and sync it back to) one of these, so a checkpoint taken by either
    path can be resumed by either path — they are bit-identical by the
    PR-4 equivalence contract.
    """

    #: (time, kind, tiebreak, payload) — kind 0 = period, 1 = resolve.
    heap: List[Tuple[float, int, int, int]]
    pending_windows: Dict[int, List[WindowEntry]]
    monthly: List[MonthlySample]
    seq: int
    next_refresh: float
    next_month: float
    month_index: int
    #: Simulated time of the next cadence checkpoint (inf = disabled).
    next_checkpoint: float

    @classmethod
    def initial(cls, sim: "MesoscopicSimulator") -> "_SweepState":
        """Seed the sweep: one period event per node, cadence armed."""
        config = sim.config
        heap: List[Tuple[float, int, int, int]] = []
        seq = 0
        for node in sim.nodes.values():
            heapq.heappush(
                heap,
                (node.placement.start_offset_s, 0, seq, node.node_id),
            )
            seq += 1
        sim._peak_heap = len(heap)
        every = config.checkpoint_every_s
        next_checkpoint = (
            every
            if every is not None and config.checkpoint_dir is not None
            else math.inf
        )
        return cls(
            heap=heap,
            pending_windows={},
            monthly=[],
            seq=seq,
            next_refresh=config.dissemination_interval_s,
            next_month=SECONDS_PER_YEAR / 12.0,
            month_index=0,
            next_checkpoint=next_checkpoint,
        )


@dataclass
class MesoscopicResult:
    """Results of a mesoscopic run plus lifespan extrapolation hooks."""

    config: SimulationConfig
    metrics: NetworkMetrics
    monthly: List[MonthlySample]
    #: Per-node linear-degradation rates (1/s), basis for extrapolation.
    linear_rates: Dict[int, float]
    simulated_s: float
    #: Per-packet records when ``record_packets`` was enabled, else None.
    packet_log: Optional[PacketLog] = None
    #: Run manifest (timings, config hash, throughput); see repro.obs.
    manifest: Optional[RunManifest] = None
    #: The run's observability bundle (metrics registry, trace bus).
    obs: Optional[Observability] = None

    def network_lifespan_days(self, model: Optional[DegradationModel] = None) -> float:
        """Extrapolated network battery lifespan (first battery to EoL)."""
        model = model or DegradationModel()
        worst = max(self.linear_rates.values())
        return model.lifespan_from_linear_rate(worst) / SECONDS_PER_DAY

    def node_lifespan_days(
        self, node_id: int, model: Optional[DegradationModel] = None
    ) -> float:
        """Extrapolated lifespan of one node's battery, in days."""
        model = model or DegradationModel()
        return (
            model.lifespan_from_linear_rate(self.linear_rates[node_id])
            / SECONDS_PER_DAY
        )

    def max_degradation_at(
        self, elapsed_s: float, model: Optional[DegradationModel] = None
    ) -> float:
        """Extrapolated worst-node Eq. (4) degradation at ``elapsed_s``."""
        from ..battery import nonlinear_degradation

        worst = max(self.linear_rates.values())
        return nonlinear_degradation(worst * elapsed_s)

    def monthly_max_series(
        self, months: int, model: Optional[DegradationModel] = None
    ) -> List[float]:
        """Fig. 7 series: max network degradation at each month boundary."""
        month_s = SECONDS_PER_YEAR / 12.0
        return [self.max_degradation_at((m + 1) * month_s) for m in range(months)]


def cell_contention_seed(seed: int, cell_index: Optional[int]) -> int:
    """Seed of a (cell-local) contention RNG stream.

    ``None`` keeps the classic whole-network stream.  Per-cell streams
    are a pure function of (seed, cell index) — never of how cells were
    packed into shard processes — which is what makes sharded results
    invariant to the shard count.
    """
    base = seed ^ 0xC0FFEE
    if cell_index is None:
        return base
    return base ^ ((0x9E3779B1 * (cell_index + 1)) & 0xFFFFFFFF)


class MesoscopicSimulator:
    """Day-structured simulator with exact per-window contention.

    ``placements``/``cell_index``/``export_nodes``/``foreign`` put the
    simulator in *cell mode* (used by :mod:`repro.sim.sharded`): it
    simulates only the given placements as one contention domain seeded
    by the cell index, records the announced schedule of
    ``export_nodes`` into :attr:`border_intents`, and replays
    ``foreign`` transmissions as static interference.
    """

    ACK_DELAY_S = 1.0

    def __init__(
        self,
        config: SimulationConfig,
        obs: Optional[Observability] = None,
        *,
        placements: Optional[List[NodePlacement]] = None,
        cell_index: Optional[int] = None,
        export_nodes: Optional[frozenset] = None,
        foreign=None,
    ) -> None:
        self.config = config
        self.obs = obs if obs is not None else config.build_observability()
        self._trace = self.obs.trace
        with self.obs.profiler.phase("build"):
            self.link = LogDistanceLink(
                path_loss_exponent=config.path_loss_exponent
            )
            clouds = CloudProcess(seed=config.seed)
            if placements is None:
                placements = build_topology(config, self.link)
            self.nodes: Dict[int, MesoNode] = {}
            for placement in placements:
                self.nodes[placement.node_id] = MesoNode(
                    placement, config, clouds, self.link, trace=self._trace
                )
        self.service = DegradationService()
        if self._trace is not None:
            self.service.bind_trace(self._trace)
        self.packet_log = (
            PacketLog(sample_nodes=config.effective_sample_nodes())
            if config.record_packets
            else None
        )
        self.cell_index = cell_index
        self._export_nodes = export_nodes
        self._foreign = foreign
        #: (absolute_window, node_id, offset | nan) schedule announcements
        #: of exported border nodes, in emission order.
        self.border_intents: List[Tuple[int, int, float]] = []
        self.rng = random.Random(cell_contention_seed(config.seed, cell_index))
        self.model = DegradationModel()
        self._events_executed = 0
        self._peak_heap = 0
        #: In-flight sweep progress; None until a run starts.  A
        #: checkpoint restored mid-sweep carries this, and ``run()``
        #: continues it instead of re-seeding the heap.
        self._sweep_state: Optional[_SweepState] = None

    def run(self) -> MesoscopicResult:
        """Execute the configured horizon and aggregate the results.

        Works for fresh simulators and ones restored from a checkpoint
        (a resumed simulator continues its in-flight sweep state).
        """
        try:
            return self._run_impl()
        except BaseException:
            # The trace sink must not lose buffered lines when a run
            # dies or is interrupted; close() is idempotent, so the
            # completion path's obs.close() stays a harmless no-op.
            self.obs.close()
            raise

    def _run_impl(self) -> MesoscopicResult:
        config = self.config
        duration = config.duration_s

        if self._sweep_state is None and self._trace is not None:
            self._trace.emit(
                0.0,
                "engine",
                "engine.run_started",
                engine="mesoscopic",
                seed=config.seed,
                nodes=len(self.nodes),
                duration_s=duration,
            )
            emit_startup_notice(self._trace)

        with self.obs.profiler.phase("run"):
            # Tracing needs the scalar path's per-call emission points;
            # the vectorized sweep only runs with the trace bus off.
            if config.vectorized and self._trace is None:
                from .mesoscopic_vec import run_sweep

                monthly = run_sweep(self)
            else:
                monthly = self._run_sweep()
        with self.obs.profiler.phase("finalize"):
            self._finalize(duration)
            linear_rates = {}
            for node in self.nodes.values():
                breakdown = node.battery.last_breakdown
                linear = breakdown.linear if breakdown is not None else 0.0
                linear_rates[node.node_id] = linear / max(duration, 1.0)
            metrics = NetworkMetrics(
                nodes={nid: n.metrics for nid, n in self.nodes.items()}
            )
            metrics.publish(self.obs.metrics)
            self._publish_engine_metrics()
        manifest = self._build_manifest()
        if self._trace is not None:
            self._trace.emit(
                duration,
                "engine",
                "engine.run_finished",
                engine="mesoscopic",
                events=self._events_executed,
                wall_s=manifest.wall_s,
            )
            # Include the closing marker in the manifest's accounting.
            manifest.trace_events = self._trace.emitted
            manifest.trace_dropped = self._trace.dropped
        self.obs.close()
        return MesoscopicResult(
            config=config,
            metrics=metrics,
            monthly=monthly,
            linear_rates=linear_rates,
            simulated_s=duration,
            packet_log=self.packet_log,
            manifest=manifest,
            obs=self.obs,
        )

    def _run_sweep(self) -> List[MonthlySample]:
        """The scalar reference sweep: one heap event at a time.

        The vectorized sweep in :mod:`repro.sim.mesoscopic_vec` batches
        the same event stream; this path stays as the bit-level
        reference (and the only path when tracing is on).
        """
        config = self.config
        window_s = config.window_s
        duration = config.duration_s

        # Global chronological sweep: a heap of period starts plus
        # deferred window resolutions.  All progress lives in the
        # (checkpointable) sweep state; the hot loop works on local
        # aliases and syncs scalars back at snapshot instants only.
        PERIOD = 0
        state = self._sweep_state
        if state is None:
            state = self._sweep_state = _SweepState.initial(self)
        heap = state.heap
        pending_windows = state.pending_windows
        monthly = state.monthly
        seq = state.seq
        next_refresh = state.next_refresh
        month_s = SECONDS_PER_YEAR / 12.0
        next_month = state.next_month
        month_index = state.month_index
        iterations = 0

        while heap and heap[0][0] <= duration:
            if heap[0][0] >= state.next_checkpoint:
                state.seq = seq
                state.next_refresh = next_refresh
                state.next_month = next_month
                state.month_index = month_index
                self._checkpoint_before(heap[0][0], state)
            iterations += 1
            if iterations % 256 == 0 and stop_requested():
                state.seq = seq
                state.next_refresh = next_refresh
                state.next_month = next_month
                state.month_index = month_index
                self._interrupted(heap[0][0])
            time_s, kind, _, payload = heapq.heappop(heap)
            self._events_executed += 1

            while next_refresh <= time_s:
                self._refresh_degradation(next_refresh)
                next_refresh += config.dissemination_interval_s
            while next_month <= time_s:
                month_index += 1
                values = [
                    n.metrics.degradation for n in self.nodes.values()
                ]
                monthly.append(
                    MonthlySample(
                        month=month_index,
                        max_degradation=max(values),
                        mean_degradation=sum(values) / len(values),
                    )
                )
                next_month += month_s

            if kind == PERIOD:
                node = self.nodes[payload]
                self._start_period(node, time_s, pending_windows, heap, seq)
                seq += 1
                next_start = time_s + node.placement.period_s
                if next_start <= duration:
                    heapq.heappush(
                        heap, (next_start, PERIOD, seq, node.node_id)
                    )
                    seq += 1
            else:  # RESOLVE at the end of absolute window `payload`
                entries = pending_windows.pop(payload, [])
                if entries:
                    self._resolve(entries, payload, window_s)
            if len(heap) > self._peak_heap:
                self._peak_heap = len(heap)

        state.seq = seq
        state.next_refresh = next_refresh
        state.next_month = next_month
        state.month_index = month_index
        # Flush any windows scheduled past the horizon.
        for window_index, entries in sorted(pending_windows.items()):
            self._resolve(entries, window_index, window_s)
        pending_windows.clear()
        return monthly

    def _build_manifest(self) -> RunManifest:
        config = self.config
        manifest = RunManifest(
            engine="mesoscopic",
            seed=config.seed,
            config_hash=config_hash(config),
            node_count=len(self.nodes),
            duration_s=config.duration_s,
            policy=config.policy_name,
            git_rev=git_revision() if self._trace is not None else None,
            events_executed=self._events_executed,
            peak_queue_depth=self._peak_heap,
            trace_events=(
                self._trace.emitted if self._trace is not None else 0
            ),
            trace_dropped=(
                self._trace.dropped if self._trace is not None else 0
            ),
            trace_path=config.trace_path,
        )
        manifest.finalize(self.obs.profiler, simulated_s=config.duration_s)
        return manifest

    def _publish_engine_metrics(self) -> None:
        registry = self.obs.metrics
        registry.counter(
            "events_executed_total",
            "Heap events executed by the mesoscopic sweep",
        ).inc(self._events_executed)
        registry.gauge(
            "event_queue_peak_depth",
            "Peak depth of the period/resolve heap",
        ).set(self._peak_heap)

    # -------------------------------------------------------- checkpointing

    def _checkpoint_before(self, next_event_s: float, state: _SweepState) -> None:
        """Cadence snapshot taken at the loop top, before the next pop.

        The state is exactly "about to process the event at
        ``next_event_s``" and saving mutates nothing, so resuming the
        snapshot is trivially bit-identical to continuing.  The cadence
        pointer is advanced *before* saving so the snapshot carries its
        own future (catching up across empty stretches where no event
        landed between two boundaries).
        """
        checkpoint_t = state.next_checkpoint
        while state.next_checkpoint <= next_event_s:
            checkpoint_t = state.next_checkpoint
            state.next_checkpoint += self.config.checkpoint_every_s
        self._write_checkpoint(min(checkpoint_t, self.config.duration_s))

    def _write_checkpoint(self, time_s: float) -> None:
        """Bump the deterministic bookkeeping, then snapshot.

        Counter and trace marker move *before* pickling so a resumed
        run continues both series exactly where the reference run's
        were at this instant.
        """
        self.obs.metrics.counter(
            "checkpoints_written_total", "Checkpoints the engine wrote"
        ).inc()
        if self._trace is not None:
            self._trace.emit(
                time_s,
                "engine",
                "engine.checkpoint",
                severity="debug",
                events_executed=self._events_executed,
            )
        save_checkpoint(self, self.config.checkpoint_dir, time_s, engine="meso")

    def _interrupted(self, time_s: float) -> None:
        """Unwind after a SIGINT/SIGTERM stop request (rescue snapshot).

        The rescue snapshot skips the checkpoint counter and trace —
        out-of-band bookkeeping must not leak into the resumed run's
        (byte-compared) outputs.
        """
        path = None
        if self.config.checkpoint_dir is not None:
            path = save_checkpoint(
                self, self.config.checkpoint_dir, time_s, engine="meso"
            )
        raise SimulationInterrupted(
            f"mesoscopic run stopped by signal at t={time_s:.3f}s",
            time_s=time_s,
            checkpoint_path=path,
            signum=last_signal(),
        )

    # ------------------------------------------------------------- internals

    def _start_period(
        self,
        node: MesoNode,
        now_s: float,
        pending_windows: Dict[int, List[WindowEntry]],
        heap: List,
        seq: int,
    ) -> None:
        node.settle_to(now_s)
        node.metrics.record_generated()
        windows = node.windows_per_period
        forecast = node.forecaster.forecast(now_s, self.config.window_s, windows)
        context = PeriodContext(
            battery_energy_j=node.battery.stored_j,
            green_forecast_j=forecast,
            nominal_tx_energy_j=node.attempt_energy_j,
            period_start_s=now_s,
        )
        decision = node.mac.choose_window(context)
        if not decision.success or decision.window_index is None:
            node.metrics.record_failure(0, 0.0, energy_drop=True)
            if self._trace is not None:
                self._trace.emit(
                    now_s,
                    "packet",
                    "packet.dropped",
                    severity="warning",
                    node_id=node.node_id,
                    reason="no_feasible_window",
                    soc=node.battery.soc,
                )
            if self.packet_log is not None:
                self.packet_log.append(
                    PacketRecord(
                        node_id=node.node_id,
                        generated_at_s=now_s,
                        window_index=-1,
                        attempts=0,
                        delivered=False,
                        latency_s=node.placement.period_s,
                        utility=0.0,
                        energy_drop=True,
                    )
                )
            return
        node.metrics.record_window(decision.window_index)
        if self._trace is not None and self._trace.wants("packet", "debug"):
            self._trace.emit(
                now_s,
                "packet",
                "packet.generated",
                severity="debug",
                node_id=node.node_id,
                window_index=decision.window_index,
                soc=node.battery.soc,
            )
        tx_time = now_s + decision.window_index * self.config.window_s
        absolute_window = int(tx_time // self.config.window_s)
        entry = WindowEntry(
            node=node,
            immediate=not self.config.use_window_selection,
            window_index_in_period=decision.window_index,
            period_start_s=now_s,
            decision=decision,
            offset_in_window_s=tx_time - absolute_window * self.config.window_s,
        )
        bucket = pending_windows.setdefault(absolute_window, [])
        bucket.append(entry)
        self._export_intent(entry, absolute_window)
        if len(bucket) == 1:
            resolve_time = (absolute_window + 1) * self.config.window_s
            heapq.heappush(heap, (resolve_time, 1, seq, absolute_window))

    def _export_intent(self, entry: WindowEntry, absolute_window: int) -> None:
        """Announce a border node's scheduled window to other cells.

        Only the grid window is announced — window-selected offsets are
        drawn later from the *cell* RNG and must not couple cells, so
        receivers re-derive a deterministic offset; immediate (ALOHA)
        offsets are known now and exported as-is.
        """
        node_id = entry.node.node_id
        if self._export_nodes is None or node_id not in self._export_nodes:
            return
        self.border_intents.append(
            (
                absolute_window,
                node_id,
                entry.offset_in_window_s if entry.immediate else math.nan,
            )
        )

    def _statics_for(self, window_index: int) -> Sequence[StaticAttempt]:
        """Foreign static interferers scheduled in one absolute window."""
        if self._foreign is None:
            return ()
        return self._foreign.statics_for(window_index)

    def _resolve(
        self, entries: List[WindowEntry], window_index: int, window_s: float
    ) -> None:
        outcomes = resolve_window(
            entries,
            window_s=window_s,
            channel_count=self.config.channel_count,
            omega=self.config.omega,
            max_retransmissions=self.config.max_retransmissions,
            rng=self.rng,
            static_attempts=self._statics_for(window_index),
        )
        window_start = window_index * window_s
        for entry in entries:
            node = entry.node
            outcome = outcomes[node.node_id]
            decision = entry.decision  # type: ignore[attr-defined]
            demand = outcome.attempts * node.attempt_energy_j
            settle_time = max(
                window_start + outcome.finish_offset_s, node.settled_until_s
            )
            shortfall = node.settle_to(settle_time, extra_demand_j=demand)
            if shortfall > demand * 0.5:
                # The battery could not fund the attempts: brown-out.
                node.metrics.record_failure(
                    retransmissions=outcome.attempts - 1,
                    tx_energy_j=0.0,
                    energy_drop=True,
                )
                if self._trace is not None:
                    self._trace.emit(
                        settle_time,
                        "packet",
                        "packet.dropped",
                        severity="warning",
                        node_id=node.node_id,
                        reason="brownout",
                        soc=node.battery.soc,
                    )
                if self.packet_log is not None:
                    self.packet_log.append(
                        PacketRecord(
                            node_id=node.node_id,
                            generated_at_s=entry.period_start_s,
                            window_index=entry.window_index_in_period,
                            attempts=0,
                            delivered=False,
                            latency_s=node.placement.period_s,
                            utility=0.0,
                            energy_drop=True,
                        )
                    )
                node.mac.observe_result(
                    entry.window_index_in_period,
                    min(outcome.attempts - 1, self.config.max_retransmissions),
                    demand,
                )
                continue
            tx_metric = outcome.attempts * node.tx_energy_j
            retx = outcome.attempts - 1
            if outcome.success:
                # Jittered period starts are bucketed onto the global
                # window grid, so the grid window can begin slightly
                # before the period; clamp to the physical minimum.
                latency = max(
                    node.airtime_s + self.ACK_DELAY_S,
                    (window_start - entry.period_start_s)
                    + outcome.finish_offset_s
                    + self.ACK_DELAY_S,
                )
                node.metrics.record_delivery(
                    retransmissions=retx,
                    tx_energy_j=tx_metric,
                    utility=decision.utility,
                    latency_s=latency,
                )
            else:
                node.metrics.record_failure(
                    retransmissions=retx, tx_energy_j=tx_metric
                )
            node.mac.observe_result(entry.window_index_in_period, retx, demand)
            if self._trace is not None:
                self._trace.emit(
                    window_start + outcome.finish_offset_s,
                    "packet",
                    "packet.finished",
                    severity="info" if outcome.success else "warning",
                    node_id=node.node_id,
                    delivered=outcome.success,
                    window_index=entry.window_index_in_period,
                    retransmissions=retx,
                    battery_energy_j=node.battery.stored_j,
                )
            if self.packet_log is not None:
                self.packet_log.append(
                    PacketRecord(
                        node_id=node.node_id,
                        generated_at_s=entry.period_start_s,
                        window_index=entry.window_index_in_period,
                        attempts=outcome.attempts,
                        delivered=outcome.success,
                        latency_s=latency if outcome.success else node.placement.period_s,
                        utility=decision.utility if outcome.success else 0.0,
                        energy_drop=False,
                    )
                )
            node.forecaster.observe(
                window_start,
                window_s,
                node.harvester.window_energy_j(window_start, window_s),
            )

    def _refresh_degradation(self, now_s: float) -> None:
        started = time.perf_counter()
        compact = self.config.effective_compact_trace()
        exempt = self.config.effective_sample_nodes() if compact else None
        for node in self.nodes.values():
            node.settle_to(now_s)
            degradation = node.battery.refresh_degradation()
            if compact and (exempt is None or node.node_id not in exempt):
                node.battery.trace.compact_tail()
            node.metrics.degradation = degradation
            breakdown = node.battery.last_breakdown
            if breakdown is not None:
                node.metrics.cycle_aging = breakdown.cycle
                node.metrics.calendar_aging = breakdown.calendar
            self.service.set_degradation(node.node_id, degradation)
        for node in self.nodes.values():
            node.mac.set_normalized_degradation(
                self.service.normalized_degradation(node.node_id)
            )
        self._record_refresh_wall(now_s, time.perf_counter() - started)
        if self._trace is not None:
            self._trace.emit(
                now_s,
                "wu",
                "wu.recomputed",
                severity="debug",
                nodes=len(self.nodes),
            )

    def _record_refresh_wall(self, now_s: float, elapsed_s: float) -> None:
        """Publish one refresh pass's wall time to metrics and trace."""
        self.obs.metrics.counter(
            "degradation_refresh_seconds",
            "Wall seconds spent in Eq. (1)-(4) refresh passes",
        ).inc(elapsed_s)
        if self._trace is not None:
            self._trace.emit(
                now_s,
                "perf",
                "perf.refresh",
                severity="debug",
                nodes=len(self.nodes),
                wall_s=elapsed_s,
                incremental=self.config.incremental_degradation,
            )

    def _finalize(self, duration_s: float) -> None:
        started = time.perf_counter()
        for node in self.nodes.values():
            node.settle_to(duration_s)
            degradation = node.battery.refresh_degradation()
            node.metrics.degradation = degradation
            breakdown = node.battery.last_breakdown
            if breakdown is not None:
                node.metrics.cycle_aging = breakdown.cycle
                node.metrics.calendar_aging = breakdown.calendar
            node.metrics.final_soc = node.battery.soc
        self._record_refresh_wall(duration_s, time.perf_counter() - started)


def run_mesoscopic(
    config: SimulationConfig,
    obs: Optional[Observability] = None,
    shard_workers: int = 1,
    transport=None,
) -> MesoscopicResult:
    """Convenience wrapper: build and run a mesoscopic simulation.

    When ``config.shards`` is set the run is dispatched to the
    gateway-cell sharded coordinator (worker processes bound memory;
    results are invariant to the shard count).  ``transport`` selects
    how shard cells execute (local pipes when None; a
    :class:`repro.dist.DistTransport` leases them to remote workers)
    and requires ``config.shards``.
    """
    if config.shards is not None:
        from .sharded import run_sharded

        return run_sharded(
            config, obs=obs, workers=shard_workers, transport=transport
        )
    if transport is not None:
        raise ConfigurationError(
            "a dist transport requires sharded execution; set config.shards"
        )
    return MesoscopicSimulator(config, obs=obs).run()
