"""End-device model for the event-driven simulator.

Each :class:`EndDevice` owns its battery, harvester, forecaster, MAC
policy, and metrics, and implements the per-period behaviour of
Section III-B: at every sampling period it generates a packet, runs the
MAC's window decision, transmits (with up to 8 retransmissions and
class-A receive windows) at the chosen window, and settles its energy
through the software-defined switch so the SoC trace reflects Eq. (5).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from ..battery import Battery, TransitionReport
from ..core import (
    ConfirmedUplinkRetrier,
    MacPolicy,
    PeriodContext,
    WindowDecision,
    uniform_offset_in_window,
)
from ..energy import EnergyForecaster, Harvester, SoftwareDefinedSwitch
from ..exceptions import ConfigurationError, InvariantError
from ..lora import ChannelHopper, EnergyModel, TxParams, airtime_table
from .metrics import NodeMetrics
from .packetlog import PacketLog, PacketRecord
from .topology import NodePlacement


@dataclass
class PacketState:
    """Lifecycle of the packet generated in the current sampling period."""

    generated_at_s: float
    period_start_s: float
    decision: WindowDecision
    attempt: int = 0
    tx_energy_metric_j: float = 0.0
    battery_energy_j: float = 0.0
    #: Forecast window of the last recharge within the period, for the
    #: piggybacked transition report.
    last_recharge_window: Optional[int] = None
    discharge_soc: Optional[float] = None


class EndDevice:
    """One LoRa node: radio, energy subsystem, MAC, and bookkeeping."""

    def __init__(
        self,
        placement: NodePlacement,
        tx_params: TxParams,
        battery: Battery,
        harvester: Harvester,
        forecaster: EnergyForecaster,
        mac: MacPolicy,
        hopper: ChannelHopper,
        window_s: float,
        energy_model: Optional[EnergyModel] = None,
        rng: Optional[random.Random] = None,
        max_retransmissions: int = 8,
        packet_log: Optional[PacketLog] = None,
        retrier: Optional[ConfirmedUplinkRetrier] = None,
        on_brownout: Optional[Callable[[float], None]] = None,
        trace=None,
    ) -> None:
        if window_s <= 0:
            raise ConfigurationError("window must be positive")
        self.placement = placement
        self.tx_params = tx_params
        self.battery = battery
        self.harvester = harvester
        self.forecaster = forecaster
        self.mac = mac
        self.hopper = hopper
        self.window_s = window_s
        self.energy_model = energy_model or EnergyModel()
        self.rng = rng or random.Random(placement.node_id)
        self.max_retransmissions = max_retransmissions
        self.packet_log = packet_log
        self.retrier = retrier or ConfirmedUplinkRetrier(
            max_retransmissions=max_retransmissions
        )
        #: Set after a reboot: the node keeps requesting a fresh ``w_u``
        #: until one actually arrives on a received ACK.
        self.needs_weight_refresh = False

        # PHY constants come from the process-wide precomputed table;
        # entries are built through the same time_on_air/tx_energy
        # functions, so the values are bit-identical to direct calls.
        self._airtime_table = airtime_table(self.energy_model)
        entry = self._airtime_table.entry(tx_params)
        self.airtime_s = entry.airtime_s
        #: Eq. (6) energy of one attempt (the TX-energy metric's unit).
        self.tx_energy_j = entry.tx_energy_j
        #: Battery cost of one attempt incl. the class-A receive windows.
        self.attempt_energy_j = entry.attempt_energy_j

        self.switch = SoftwareDefinedSwitch(
            soc_cap=mac.soc_cap, on_brownout=on_brownout
        )
        #: Optional :class:`~repro.obs.TraceBus`; binding it here wires
        #: the node's MAC, battery, and switch in one place.
        self.trace = trace
        if trace is not None:
            self.mac.bind_trace(trace, placement.node_id)
            self.battery.bind_trace(trace, placement.node_id)
            self.switch.bind_trace(trace, placement.node_id)
        self.metrics = NodeMetrics(
            node_id=placement.node_id, period_s=placement.period_s
        )
        self.packet: Optional[PacketState] = None
        self._settled_until_s = 0.0
        self._pending_report: Optional[TransitionReport] = None

    # -------------------------------------------------------- checkpointing

    def __getstate__(self):
        """Snapshot without the process-wide PHY lookup table."""
        state = dict(self.__dict__)
        state.pop("_airtime_table", None)
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        # Shared-table lookup is keyed by the (frozen, hashable) energy
        # model, so the resumed node rejoins the process-wide cache.
        self._airtime_table = airtime_table(self.energy_model)

    # ------------------------------------------------------------ properties

    def update_tx_params(self, params: TxParams) -> None:
        """Apply new transmission parameters (ADR) and refresh energies.

        Dynamic parameter changes are exactly why the protocol estimates
        TX energy with the Eq. (13) EWMA instead of trusting a constant.
        """
        self.tx_params = params
        entry = self._airtime_table.entry(params)
        self.airtime_s = entry.airtime_s
        self.tx_energy_j = entry.tx_energy_j
        self.attempt_energy_j = entry.attempt_energy_j

    @property
    def node_id(self) -> int:
        """The node's network identifier."""
        return self.placement.node_id

    @property
    def period_s(self) -> float:
        """τ — the node's sampling period in seconds."""
        return self.placement.period_s

    @property
    def windows_per_period(self) -> int:
        """|T| — forecast windows available per sampling period."""
        return max(1, int(self.placement.period_s // self.window_s))

    # --------------------------------------------------------------- energy

    def settle_to(self, now_s: float) -> None:
        """Apply harvested energy and sleep demand up to ``now_s``.

        Settlement proceeds in forecast-window-sized chunks (a partial
        final chunk ends exactly at ``now_s``) through the
        software-defined switch, so the SoC trace gains at most one point
        per window — the paper's discrete-time trace granularity.
        """
        if now_s < self._settled_until_s:
            raise InvariantError("cannot settle backwards in time")
        sleep_watts = self.energy_model.power_profile.sleep_watts
        cursor = self._settled_until_s
        while cursor < now_s - 1e-9:
            chunk_end = min(now_s, cursor + self.window_s)
            duration = chunk_end - cursor
            harvested = self.harvester.power_watts(
                cursor + duration / 2.0
            ) * duration
            result = self.switch.apply_window(
                self.battery,
                harvested_j=harvested,
                demand_j=sleep_watts * duration,
                window_end_s=chunk_end,
            )
            if result.charged_j > 0 and self.packet is not None:
                window = int((cursor - self.packet.period_start_s) // self.window_s)
                if window >= 0:
                    self.packet.last_recharge_window = min(window, 0xFE)
            cursor = chunk_end
        self._settled_until_s = now_s

    def draw_attempt_energy(self, now_s: float) -> bool:
        """Draw one attempt's battery cost at ``now_s``; False on brown-out.

        Harvest during the sub-second attempt itself is negligible; the
        switch draws the full attempt energy from the battery (after
        :meth:`settle_to` has credited harvest up to now).
        """
        self.settle_to(now_s)
        result = self.switch.apply_window(
            self.battery,
            harvested_j=0.0,
            demand_j=self.attempt_energy_j,
            window_end_s=now_s,
        )
        return result.balanced

    # ------------------------------------------------------------- protocol

    def start_period(self, now_s: float) -> Optional[float]:
        """Generate this period's packet and run the MAC decision.

        Returns the absolute time of the first transmission attempt, or
        None when the MAC returned FAIL (packet dropped for energy).
        """
        forecast = self.begin_period(now_s)
        context = PeriodContext(
            battery_energy_j=self.battery.stored_j,
            green_forecast_j=forecast,
            nominal_tx_energy_j=self.attempt_energy_j,
            period_start_s=now_s,
        )
        decision = self.mac.choose_window(context)
        return self.finish_period_decision(now_s, decision)

    def begin_period(self, now_s: float):
        """Settle, count the generated packet, and forecast this period.

        First half of :meth:`start_period`; the batched exact engine
        runs it for every same-instant node before computing the window
        decisions in one vector pass.  Returns the green-energy forecast
        the MAC decision needs.
        """
        self.settle_to(now_s)
        self.metrics.record_generated()
        return self.forecaster.forecast(
            now_s, self.window_s, self.windows_per_period
        )

    def finish_period_decision(
        self, now_s: float, decision: WindowDecision
    ) -> Optional[float]:
        """Apply a window decision: bookkeeping, packet state, schedule.

        Second half of :meth:`start_period` — everything after the MAC
        consultation, shared verbatim by the scalar and batched paths.
        Returns the absolute first-attempt time, or None on FAIL.
        """
        if not decision.success or decision.window_index is None:
            self.metrics.record_failure(0, 0.0, energy_drop=True)
            if self.trace is not None:
                self.trace.emit(
                    now_s,
                    "packet",
                    "packet.dropped",
                    severity="warning",
                    node_id=self.node_id,
                    reason="no_feasible_window",
                    soc=self.battery.soc,
                )
            if self.packet_log is not None:
                self.packet_log.append(
                    PacketRecord(
                        node_id=self.node_id,
                        generated_at_s=now_s,
                        window_index=-1,
                        attempts=0,
                        delivered=False,
                        latency_s=self.period_s,
                        utility=0.0,
                        energy_drop=True,
                    )
                )
            self.packet = None
            return None

        self.metrics.record_window(decision.window_index)
        self.packet = PacketState(
            generated_at_s=now_s,
            period_start_s=now_s,
            decision=decision,
        )
        window_start = now_s + decision.window_index * self.window_s
        if decision.window_index == 0 and not self._randomize_offset():
            offset = 0.0  # Pure ALOHA transmits the instant the packet exists.
        else:
            offset = uniform_offset_in_window(
                self.window_s, self.airtime_s, self.rng
            )
        if self.trace is not None:
            self.trace.emit(
                now_s,
                "packet",
                "packet.generated",
                severity="debug",
                node_id=self.node_id,
                window_index=decision.window_index,
                first_attempt_s=window_start + offset,
                soc=self.battery.soc,
            )
        return window_start + offset

    def _randomize_offset(self) -> bool:
        """Whether this MAC spreads transmissions inside the window.

        The proposed MAC picks a random time within the window to cut
        same-window collisions; plain ALOHA transmits immediately.
        """
        return self.mac.name != "LoRaWAN" and self.mac.name[-1] != "C"

    def observe_window_energy(self, window_start_s: float) -> None:
        """Feed the realized harvest of a window into the forecaster."""
        actual = self.harvester.window_energy_j(window_start_s, self.window_s)
        self.forecaster.observe(window_start_s, self.window_s, actual)

    def finish_packet(
        self, now_s: float, delivered: bool, latency_s: float
    ) -> Optional[TransitionReport]:
        """Close out the current packet; returns the piggyback report.

        Updates metrics and the MAC estimators; the returned report is
        what the *next* uplink would carry (the paper appends transition
        data for the previous period to the subsequent packet).
        """
        packet = self.packet
        if packet is None:
            raise InvariantError("no packet in flight")
        # ``attempt`` counts failed attempts so far; for an exhausted
        # packet it reads max+1 (the loop increments before giving up),
        # while the retransmission count is capped at the LoRa limit.
        retx = min(packet.attempt, self.max_retransmissions)
        window = packet.decision.window_index or 0
        if delivered:
            self.metrics.record_delivery(
                retransmissions=retx,
                tx_energy_j=packet.tx_energy_metric_j,
                utility=packet.decision.utility,
                latency_s=latency_s,
            )
        else:
            self.metrics.record_failure(
                retransmissions=retx, tx_energy_j=packet.tx_energy_metric_j
            )
        self.mac.observe_result(window, retx, packet.battery_energy_j)
        if self.trace is not None:
            self.trace.emit(
                now_s,
                "packet",
                "packet.finished",
                severity="info" if delivered else "warning",
                node_id=self.node_id,
                delivered=delivered,
                window_index=window,
                retransmissions=retx,
                latency_s=latency_s,
                battery_energy_j=packet.battery_energy_j,
            )
        if self.packet_log is not None:
            attempted = packet.tx_energy_metric_j > 0
            self.packet_log.append(
                PacketRecord(
                    node_id=self.node_id,
                    generated_at_s=packet.generated_at_s,
                    window_index=window,
                    attempts=retx + 1 if attempted else 0,
                    delivered=delivered,
                    latency_s=latency_s,
                    utility=packet.decision.utility if delivered else 0.0,
                    energy_drop=not delivered and not attempted,
                )
            )
        self.observe_window_energy(
            packet.period_start_s + window * self.window_s
        )
        report = TransitionReport(
            discharge_window=min(window, 0xFE),
            discharge_soc=packet.discharge_soc,
            recharge_window=packet.last_recharge_window,
            recharge_soc=self.battery.soc if packet.last_recharge_window is not None else None,
        )
        self._pending_report = report
        self.packet = None
        return report

    def take_pending_report(self) -> Optional[TransitionReport]:
        """The transition report to piggyback on the next uplink."""
        report = self._pending_report
        self._pending_report = None
        return report

    # ----------------------------------------------------------------- faults

    def backoff_s(self, attempt: int) -> float:
        """Backoff before retry ``attempt``, drawn from the node's RNG.

        Raises :class:`~repro.exceptions.ProtocolError` once the
        retransmission budget is exhausted — the caller must abandon the
        packet.
        """
        return self.retrier.backoff_s(attempt, self.rng)

    def reboot(self, now_s: float) -> None:
        """Brown-out reboot: volatile MAC state is wiped.

        The battery, harvester, and radio survive (hardware); the MAC's
        estimators and its copy of ``w_u`` live in RAM and are lost.
        Any in-flight packet must be failed by the caller *before* the
        reboot so its outcome still reaches the metrics.  After
        rebooting the node asks the gateway for a fresh weight on its
        next delivered uplink.
        """
        self.settle_to(now_s)
        if self.packet is not None:
            raise InvariantError("fail the in-flight packet before rebooting")
        self.mac.reboot()
        self._pending_report = None
        self.needs_weight_refresh = True
        self.metrics.reboots += 1
