"""Metric collection for simulation runs.

Implements exactly the metrics of Section IV-A2:

* avg retransmission (RETX) attempts per packet,
* total transmission (TX) energy over the run (Eq. 6 energies),
* battery degradation (Eq. 4),
* Packet Reception Rate (PRR: ACKed / generated),
* avg utility per packet (Eq. 16; failed packets score 0),
* avg latency per packet (generation → ACK; failed packets are
  penalized with the sampling period, as the paper specifies).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..exceptions import ConfigurationError
from ..faults import FaultCounters


@dataclass
class NodeMetrics:
    """Per-node counters accumulated during a run."""

    node_id: int
    period_s: float

    packets_generated: int = 0
    packets_delivered: int = 0
    packets_dropped_energy: int = 0
    retransmissions: int = 0
    tx_energy_j: float = 0.0
    utility_sum: float = 0.0
    latency_sum_s: float = 0.0
    delivered_latency_sum_s: float = 0.0
    window_selections: Counter = field(default_factory=Counter)
    degradation: float = 0.0
    cycle_aging: float = 0.0
    calendar_aging: float = 0.0
    final_soc: float = 0.0
    #: ACKs this node never received (downlink loss or gateway outage).
    acks_lost: int = 0
    #: Brown-out reboots this node suffered during the run.
    reboots: int = 0
    #: Packets abandoned after exhausting the retransmission budget.
    retries_exhausted: int = 0

    # ------------------------------------------------------------- recording

    def record_generated(self) -> None:
        """Count a newly generated packet."""
        self.packets_generated += 1

    def record_window(self, window_index: int) -> None:
        """Count the forecast window chosen for a packet."""
        self.window_selections[window_index] += 1

    def record_delivery(
        self, retransmissions: int, tx_energy_j: float, utility: float, latency_s: float
    ) -> None:
        """Account a packet that was eventually ACKed."""
        if retransmissions < 0 or tx_energy_j < 0 or latency_s < 0:
            raise ConfigurationError("delivery metrics cannot be negative")
        self.packets_delivered += 1
        self.retransmissions += retransmissions
        self.tx_energy_j += tx_energy_j
        self.utility_sum += utility
        self.latency_sum_s += latency_s
        self.delivered_latency_sum_s += latency_s

    def record_failure(
        self,
        retransmissions: int,
        tx_energy_j: float,
        energy_drop: bool = False,
    ) -> None:
        """Account a packet that was never ACKed.

        Failed packets score 0 utility and are penalized with the
        sampling period as their latency.
        """
        self.retransmissions += retransmissions
        self.tx_energy_j += tx_energy_j
        self.latency_sum_s += self.period_s
        if energy_drop:
            self.packets_dropped_energy += 1

    # ------------------------------------------------------------- summaries

    @property
    def prr(self) -> float:
        """ACKed / generated for this node."""
        if self.packets_generated == 0:
            return 0.0
        return self.packets_delivered / self.packets_generated

    @property
    def avg_retransmissions(self) -> float:
        """Mean RETX attempts per generated packet."""
        if self.packets_generated == 0:
            return 0.0
        return self.retransmissions / self.packets_generated

    @property
    def avg_utility(self) -> float:
        """Mean Eq. (16) utility per packet (failures score 0)."""
        if self.packets_generated == 0:
            return 0.0
        return self.utility_sum / self.packets_generated

    @property
    def avg_latency_s(self) -> float:
        """Mean latency per packet, failure-penalized."""
        if self.packets_generated == 0:
            return 0.0
        return self.latency_sum_s / self.packets_generated

    @property
    def avg_delivered_latency_s(self) -> float:
        """Mean latency over *delivered* packets only (no failure penalty).

        The paper's Fig. 6c/9c latency distributions reflect delivered
        packets; the penalized average is :attr:`avg_latency_s`.
        """
        if self.packets_delivered == 0:
            return 0.0
        return self.delivered_latency_sum_s / self.packets_delivered

    @property
    def majority_window(self) -> Optional[int]:
        """The forecast window this node used for most of its packets."""
        if not self.window_selections:
            return None
        return self.window_selections.most_common(1)[0][0]


def percentile(values: List[float], q: float) -> float:
    """Linear-interpolated percentile of a sample, ``q`` in [0, 100].

    The paper's Fig. 6/9 box plots show per-node distributions; this is
    the helper behind :meth:`NetworkMetrics.distribution`.
    """
    if not values:
        raise ConfigurationError("cannot take a percentile of nothing")
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError("percentile must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = q / 100.0 * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _variance(values: List[float]) -> float:
    if len(values) < 2:
        return 0.0
    mu = _mean(values)
    return sum((v - mu) ** 2 for v in values) / (len(values) - 1)


@dataclass
class NetworkMetrics:
    """Network-wide aggregation across all nodes of a run."""

    nodes: Dict[int, NodeMetrics]
    #: Per-fault counters from the run's injector; None for a run
    #: without a fault plan.
    faults: Optional[FaultCounters] = None

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ConfigurationError("metrics need at least one node")

    # Aggregates used by the figures -------------------------------------

    @property
    def avg_retransmissions(self) -> float:
        """Mean RETX attempts per generated packet."""
        return _mean([n.avg_retransmissions for n in self.nodes.values()])

    @property
    def total_tx_energy_j(self) -> float:
        """Total Eq. (6) transmission energy, joules."""
        return sum(n.tx_energy_j for n in self.nodes.values())

    @property
    def prr_values(self) -> List[float]:
        """Per-node packet reception rates."""
        return [n.prr for n in self.nodes.values()]

    @property
    def avg_prr(self) -> float:
        """Mean PRR across nodes."""
        return _mean(self.prr_values)

    @property
    def min_prr(self) -> float:
        """Worst node's PRR."""
        return min(self.prr_values)

    @property
    def utility_values(self) -> List[float]:
        """Per-node average utilities."""
        return [n.avg_utility for n in self.nodes.values()]

    @property
    def avg_utility(self) -> float:
        """Mean Eq. (16) utility per packet (failures score 0)."""
        return _mean(self.utility_values)

    @property
    def latency_values_s(self) -> List[float]:
        """Per-node average latencies (failures penalized)."""
        return [n.avg_latency_s for n in self.nodes.values()]

    @property
    def avg_latency_s(self) -> float:
        """Mean latency per packet, failure-penalized."""
        return _mean(self.latency_values_s)

    @property
    def delivered_latency_values_s(self) -> List[float]:
        """Per-node delivered-only latencies."""
        return [n.avg_delivered_latency_s for n in self.nodes.values()]

    @property
    def avg_delivered_latency_s(self) -> float:
        """Mean latency over delivered packets only."""
        return _mean(self.delivered_latency_values_s)

    @property
    def degradation_values(self) -> List[float]:
        """Per-node Eq. (4) degradations."""
        return [n.degradation for n in self.nodes.values()]

    @property
    def mean_degradation(self) -> float:
        """Mean degradation across nodes."""
        return _mean(self.degradation_values)

    @property
    def max_degradation(self) -> float:
        """Worst node's degradation."""
        return max(self.degradation_values)

    @property
    def degradation_variance(self) -> float:
        """Sample variance of node degradations."""
        return _variance(self.degradation_values)

    @property
    def total_cycle_aging(self) -> float:
        """Summed cycle-aging component across nodes."""
        return sum(n.cycle_aging for n in self.nodes.values())

    def distribution(self, metric: str) -> Dict[str, float]:
        """Five-number summary of a per-node metric across the network.

        ``metric`` is any per-node attribute/property name returning a
        number (e.g. ``"prr"``, ``"avg_utility"``, ``"degradation"``,
        ``"avg_delivered_latency_s"``) — the box-plot view behind the
        paper's Fig. 6 and Fig. 9 whisker plots.
        """
        try:
            values = [float(getattr(n, metric)) for n in self.nodes.values()]
        except AttributeError as error:
            raise ConfigurationError(f"unknown node metric {metric!r}") from error
        return {
            "min": min(values),
            "p25": percentile(values, 25.0),
            "median": percentile(values, 50.0),
            "p75": percentile(values, 75.0),
            "max": max(values),
        }

    def majority_window_histogram(self) -> Counter:
        """Fig. 4: nodes binned by the window they used for most packets."""
        histogram: Counter = Counter()
        for node in self.nodes.values():
            window = node.majority_window
            if window is not None:
                histogram[window] += 1
        return histogram

    def summary(self) -> Dict[str, float]:
        """Flat dict of the headline aggregates (for tables/benches).

        Runs with a fault plan additionally report every per-fault
        counter under a ``fault_`` prefix.
        """
        summary = {
            "avg_retx": self.avg_retransmissions,
            "total_tx_energy_j": self.total_tx_energy_j,
            "avg_prr": self.avg_prr,
            "min_prr": self.min_prr,
            "avg_utility": self.avg_utility,
            "avg_latency_s": self.avg_latency_s,
            "avg_delivered_latency_s": self.avg_delivered_latency_s,
            "mean_degradation": self.mean_degradation,
            "max_degradation": self.max_degradation,
            "degradation_variance": self.degradation_variance,
        }
        if self.faults is not None:
            for name, count in self.faults.as_dict().items():
                summary[f"fault_{name}"] = float(count)
        return summary

    def publish(self, registry) -> None:
        """Publish this run's aggregates into a metrics registry.

        The structured counterpart of :meth:`summary`: headline
        aggregates become gauges, fault counters become one labelled
        ``fault_events_total`` counter family, and the per-node PRR and
        degradation spreads become histograms — ready for the
        Prometheus-text or JSON exports of
        :class:`~repro.obs.MetricsRegistry`.
        """
        packets_generated = sum(
            n.packets_generated for n in self.nodes.values()
        )
        packets_delivered = sum(
            n.packets_delivered for n in self.nodes.values()
        )
        registry.counter(
            "packets_generated_total", "Packets generated across all nodes"
        ).inc(packets_generated)
        registry.counter(
            "packets_delivered_total", "Packets eventually ACKed"
        ).inc(packets_delivered)
        gauges = {
            "avg_retransmissions": (
                self.avg_retransmissions,
                "Mean RETX attempts per generated packet",
            ),
            "tx_energy_joules": (
                self.total_tx_energy_j,
                "Total Eq. (6) transmission energy",
            ),
            "avg_prr": (self.avg_prr, "Mean per-node packet reception rate"),
            "min_prr": (self.min_prr, "Worst node's packet reception rate"),
            "avg_utility": (self.avg_utility, "Mean Eq. (16) packet utility"),
            "avg_latency_seconds": (
                self.avg_latency_s,
                "Mean failure-penalized packet latency",
            ),
            "mean_degradation": (
                self.mean_degradation,
                "Mean Eq. (4) battery degradation",
            ),
            "max_degradation": (
                self.max_degradation,
                "Worst node's Eq. (4) battery degradation",
            ),
        }
        for name, (value, help_text) in gauges.items():
            registry.gauge(name, help_text).set(value)
        unit_buckets = tuple(round(0.1 * i, 1) for i in range(1, 11))
        prr_histogram = registry.histogram(
            "node_prr",
            "Per-node PRR distribution",
            buckets=unit_buckets,
        )
        degradation_histogram = registry.histogram(
            "node_degradation",
            "Per-node Eq. (4) degradation distribution",
            buckets=unit_buckets,
        )
        for node in self.nodes.values():
            prr_histogram.observe(node.prr)
            degradation_histogram.observe(node.degradation)
        if self.faults is not None:
            for name, count in self.faults.as_dict().items():
                registry.counter(
                    "fault_events_total",
                    "Fault-injector firings by kind",
                    labels={"kind": name},
                ).inc(count)
