"""Network-server model.

The network server sits behind the gateway(s): it terminates the MAC
(issues ACKs for confirmed uplinks), hosts the
:class:`~repro.core.DegradationService` that reconstructs SoC traces from
piggybacked reports, and pushes the normalized degradation byte back to
each node on its ACKs (Section III-B, "Disseminating battery
degradation").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..battery import TransitionReport
from ..core import DegradationService, dequantize_w
from ..exceptions import ConfigurationError


@dataclass
class AckPayload:
    """What the server returns to the node inside an ACK."""

    #: Normalized degradation byte, present at most once per
    #: dissemination interval (None → plain ACK, no overhead).
    w_byte: Optional[int]

    @property
    def w_u(self) -> Optional[float]:
        """Decoded normalized degradation, if the ACK carried one."""
        return None if self.w_byte is None else dequantize_w(self.w_byte)

    @property
    def extra_bytes(self) -> int:
        """ACK size increase caused by the piggybacked byte."""
        return 0 if self.w_byte is None else 1


class NetworkServer:
    """Terminates confirmed uplinks and manages degradation dissemination."""

    def __init__(self, service: Optional[DegradationService] = None) -> None:
        self._service = service or DegradationService()
        self._uplinks = 0
        self._disseminations = 0

    @property
    def service(self) -> DegradationService:
        """The degradation bookkeeper behind this server."""
        return self._service

    @property
    def uplinks_received(self) -> int:
        """Total decoded uplinks handled."""
        return self._uplinks

    @property
    def disseminations_sent(self) -> int:
        """ACKs that carried a w_u byte."""
        return self._disseminations

    def handle_uplink(
        self,
        node_id: int,
        now_s: float,
        report: Optional[TransitionReport] = None,
        period_start_s: float = 0.0,
        window_s: float = 60.0,
    ) -> AckPayload:
        """Process a decoded uplink and build its ACK payload.

        Folds the piggybacked transition report (if any) into the node's
        reconstructed trace and attaches the ``w_u`` byte when the
        dissemination interval has elapsed for this node.
        """
        if now_s < 0:
            raise ConfigurationError("time cannot be negative")
        self._uplinks += 1
        if report is not None:
            self._service.ingest_report(node_id, report, period_start_s, window_s)
        w_byte = self._service.ack_payload_byte(node_id, now_s)
        if w_byte is not None:
            self._disseminations += 1
        return AckPayload(w_byte=w_byte)

    def force_dissemination(self, node_id: int) -> None:
        """Mark ``node_id`` for an immediate ``w_u`` refresh.

        Called when a node signals it rebooted (and therefore lost its
        volatile copy of the weight): the next ACK carries a fresh byte
        regardless of the dissemination interval.
        """
        self._service.force_dissemination(node_id)

    def recompute_degradations(self, age_s: float, temperature_c: float = 25.0) -> None:
        """Daily batch: rerun Eq. (1)-(4) for every known node."""
        self._service.recompute_all(age_s=age_s, temperature_c=temperature_c)

    def publish_degradation(self, node_id: int, degradation: float) -> None:
        """Engine shortcut: inject simulator-computed degradation."""
        self._service.set_degradation(node_id, degradation)
