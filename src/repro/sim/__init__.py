"""Network-simulation substrate (NS-3 substitute).

Two engines share configuration, topology, and metrics:

* :mod:`repro.sim.engine` — exact event-driven simulation for
  testbed-scale scenarios (per-attempt airtime overlap, capture, ω
  demodulators, class-A timing).
* :mod:`repro.sim.mesoscopic` — period-granular runner with exact
  per-window contention for multi-year, hundreds-of-nodes horizons,
  plus principled degradation-rate extrapolation.
"""

from .config import SimulationConfig
from .engine import (
    SimulationResult,
    Simulator,
    build_forecaster,
    build_mac,
    run_simulation,
)
from .events import EventHandle, EventQueue
from .gateway import Gateway, GatewayStats, ReceptionToken
from .mesoscopic import (
    MesoscopicResult,
    MesoscopicSimulator,
    MonthlySample,
    resolve_window,
    run_mesoscopic,
)
from .metrics import NetworkMetrics, NodeMetrics, percentile
from .node import EndDevice, PacketState
from .packetlog import PacketLog, PacketRecord
from .server import AckPayload, NetworkServer
from .topology import (
    NodePlacement,
    gateway_positions,
    assign_spreading_factor,
    build_topology,
    sample_period_s,
    uniform_disk_point,
)

__all__ = [
    "AckPayload",
    "EndDevice",
    "EventHandle",
    "EventQueue",
    "Gateway",
    "GatewayStats",
    "MesoscopicResult",
    "MesoscopicSimulator",
    "MonthlySample",
    "NetworkMetrics",
    "NetworkServer",
    "NodeMetrics",
    "NodePlacement",
    "PacketLog",
    "PacketRecord",
    "PacketState",
    "ReceptionToken",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "assign_spreading_factor",
    "build_forecaster",
    "build_mac",
    "build_topology",
    "gateway_positions",
    "resolve_window",
    "run_mesoscopic",
    "run_simulation",
    "percentile",
    "sample_period_s",
    "uniform_disk_point",
]
