"""Vectorized fast path for the mesoscopic simulator.

The scalar sweep in :mod:`repro.sim.mesoscopic` pops one heap event at a
time and, per node, walks Python loops for harvest evaluation, SoC
settling and Algorithm-1 scoring.  This module executes the *same* event
stream with three batched kernels:

* **Cohort period starts** — sampling periods are whole minutes and
  synchronized deployments share exact float period-start timestamps, so
  all PERIOD events at one instant are popped together and settled,
  forecast and scored as arrays.  A PERIOD event never enqueues another
  event at its own timestamp (resolutions and next periods land strictly
  later), so the batch pop sees exactly the events the scalar loop would.
* **Batched settling** — chunk plans for a whole batch are evaluated
  through one shared :meth:`SolarModel.power_watts_batch` call plus
  per-node shading gathers; the switch/battery arithmetic is applied
  with the exact scalar operation order (see ``_apply_chunks``).
* **Batched Algorithm 1** — :func:`repro.core.mac.batch_choose_windows`
  scores a node × window matrix per period-length cohort.

Equivalence with the scalar path is structural, not approximate: every
random draw comes from the same generator in the same order, and every
float operation follows the scalar operand order (the shared-RNG window
resolver is reused verbatim for contended windows).  The scalar sweep
remains the reference; ``SimulationConfig.vectorized=False`` or enabling
tracing selects it.
"""

from __future__ import annotations

import heapq
import time
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..checkpoint.interrupt import stop_requested
from ..constants import SECONDS_PER_YEAR
from ..core.mac import batch_choose_windows_mixed
from ..exceptions import ConfigurationError
from ..kernels import contention as kcontention
from ..kernels import rainflow as krainflow
from ..kernels import settle as ksettle
from ..kernels import shading as kshading
from .mesoscopic import (
    MesoNode,
    MonthlySample,
    WindowEntry,
    WindowOutcome,
    _SweepState,
    resolve_window,
)
from .packetlog import PacketRecord


class _FastDecision:
    """Minimal stand-in for :class:`WindowDecision` in window entries.

    Resolution only reads ``decision.utility``; carrying the single
    float avoids materializing the per-window score lists the batch
    scorer already holds as matrices.
    """

    __slots__ = ("utility",)

    def __init__(self, utility: float) -> None:
        self.utility = utility


# --------------------------------------------------------------- settling


def _settle_items(
    items: Sequence[Tuple[MesoNode, float, float]],
    shared_solar,
    chunk_s: float,
) -> List[float]:
    """Settle ``(node, time, extra_demand)`` items; returns shortfalls.

    Chunk plans for every item are laid out first, the shared solar
    power is evaluated once for all chunk midpoints, then each node's
    chunks are applied with the scalar switch/battery arithmetic.
    Cross-node work is order-independent (each node only touches its own
    battery/harvester state), so batching preserves scalar results as
    long as one node appears at most once per call.
    """
    plans = []
    mids_all: List[float] = []
    for node, now_s, extra in items:
        now_s = max(now_s, node.settled_until_s)
        cursor = node.settled_until_s
        ends: List[float] = []
        durations: List[float] = []
        while cursor < now_s - 1e-9:
            chunk_end = min(now_s, cursor + chunk_s)
            duration = chunk_end - cursor
            ends.append(chunk_end)
            durations.append(duration)
            mids_all.append(cursor + duration / 2.0)
            cursor = chunk_end
        plans.append((node, now_s, extra, ends, durations))
    if mids_all:
        mids_arr = np.array(mids_all)
        solar_all = shared_solar.power_watts_batch(mids_arr)
        # One shading gather per node into a shared buffer, then a
        # single (solar × shading) × η expression for the whole batch
        # — elementwise identical to Harvester.power_watts per chunk.
        # Night midpoints (solar == 0) skip the gather entirely: zero
        # panel output multiplies to an exact 0.0 whatever the factor,
        # and the factor is a pure function of its grid index, so the
        # skipped draws cannot perturb later values.
        shade_all = np.ones(mids_arr.size)
        first = items[0][0].harvester
        if first.shading_sigma != 0.0:
            day = solar_all != 0.0
            if day.any():
                grid = np.floor_divide(mids_arr, first.shading_step_s).astype(
                    np.int64
                )
                pos = 0
                for node, _, _, ends, _ in plans:
                    count = len(ends)
                    if count:
                        mask = day[pos : pos + count]
                        if mask.any():
                            shade_all[pos : pos + count][mask] = kshading.gather(
                                node.harvester, grid[pos : pos + count][mask]
                            )
                        pos += count
        powers_all = ((solar_all * shade_all) * first.efficiency).tolist()
    pos = 0
    shortfalls: List[float] = []
    for node, now_s, extra, ends, durations in plans:
        count = len(ends)
        if count:
            shortfall = _apply_chunks(
                node, ends, durations, powers_all[pos : pos + count], extra
            )
            pos += count
        else:
            shortfall = 0.0
            if extra > 0:
                # Settling to the same instant: apply the demand directly
                # (the switch's deficit branch with zero harvest).
                battery = node.battery
                used = min(extra, battery.stored_j)
                shortfall = extra - used
                battery.stored_j = max(0.0, battery.stored_j - used)
                _advance(battery, node.settled_until_s)
        node.settled_until_s = max(node.settled_until_s, now_s)
        shortfalls.append(shortfall)
    return shortfalls


def _advance(battery, now_s: float) -> None:
    """Inline of ``Battery._advance`` (monotonicity holds by schedule)."""
    battery._now_s = now_s
    soc = battery.stored_j / battery.capacity_j
    battery.trace.append(now_s, soc)
    if battery._incremental is not None:
        battery._incremental.push(min(soc, 1.0))


def _apply_chunks(
    node: MesoNode,
    ends: List[float],
    durations: List[float],
    powers: List[float],
    extra: float,
) -> float:
    """Apply settle chunks with the exact scalar switch/battery ops.

    Reproduces ``SoftwareDefinedSwitch.apply_window`` plus
    ``Battery.charge``/``discharge``/``settle`` per chunk, bit for bit:
    same min/max/accumulation order, the extra (transmission) demand
    added to the final chunk only.  The recurrence itself runs through
    :func:`repro.kernels.settle.recurrence` (the JIT-able hot loop);
    the resulting SoC samples then feed the trace monotone-run merge
    and the streaming-rainflow replay kernel — the semantics are the
    batch-API ones of ``SocTrace.extend_batch`` /
    ``StreamingRainflow.extend_batch``, sample for sample.  The charge
    limit is hoisted — degradation is constant between refreshes, so
    ``min(current_max, θ·capacity)`` is loop-invariant.
    """
    battery = node.battery
    trace = battery.trace
    prev_t, prev_c = trace._last_time, trace._last_soc
    if prev_t is not None and ends[0] < prev_t:
        raise ConfigurationError("trace times must be non-decreasing")
    if trace._start_time is None:
        trace._start_time = ends[0]
    have_prev = prev_t is not None
    socs, stored, shortfall, integral, prev_t, prev_c = ksettle.recurrence(
        ends,
        durations,
        powers,
        node.sleep_watts,
        extra,
        battery.stored_j,
        min(
            battery.current_max_capacity_j,
            node.switch.soc_cap * battery.capacity_j,
        ),
        battery.capacity_j,
        have_prev,
        prev_t if have_prev else 0.0,
        prev_c if have_prev else 0.0,
        trace._weighted_integral,
    )
    # Trace merge, inlined from SocTrace.append's monotone-continuation
    # rule: a sample extending the tail's run rewrites the tail point.
    ts, ss = trace.times, trace.socs
    for i, clamped in enumerate(socs):
        t = ends[i]
        if len(ss) >= 2:
            prev, tail_s = ss[-2], ss[-1]
            if tail_s > prev:
                cont = clamped >= tail_s
            elif tail_s < prev:
                cont = clamped <= tail_s
            else:
                cont = clamped == tail_s
        else:
            cont = False
        if cont:
            ts[-1] = t
            ss[-1] = clamped
        else:
            ts.append(t)
            ss.append(clamped)
    incremental = battery._incremental
    if incremental is not None:
        krainflow.replay(incremental._stream, socs)
    trace._weighted_integral = integral
    trace._last_time = prev_t
    trace._last_soc = prev_c
    battery.stored_j = stored
    battery._now_s = ends[len(ends) - 1]
    return shortfall


# ------------------------------------------------------------ period starts


def _start_period_batch(
    sim,
    batch: List[MesoNode],
    now_s: float,
    pending_windows: Dict[int, List[WindowEntry]],
    heap: List,
    seq: int,
    shared_solar,
    duration: float,
) -> int:
    """Process all PERIOD events sharing one timestamp; returns new seq.

    Stages (settle → forecast → decide → bookkeeping) run batch-wide,
    but per-node effects happen in batch order — the scalar pop order —
    so window-bucket append order, heap sequence numbers and every
    per-node RNG stream match the scalar sweep exactly.
    """
    config = sim.config
    window_s = config.window_s
    _settle_items(
        [(node, now_s, 0.0) for node in batch],
        shared_solar,
        config.settle_chunk_s(),
    )
    for node in batch:
        node.metrics.record_generated()

    counts = [node.windows_per_period for node in batch]
    if config.use_window_selection:
        max_count = max(counts)
        mids = (now_s + np.arange(max_count) * window_s) + window_s / 2.0
        solar_powers = shared_solar.power_watts_batch(mids)
        if config.forecaster == "oracle":
            # Oracle forecasts are the harvester's true energies; the
            # whole cohort shares the solar vector, so only the per-node
            # shading gather remains before one matrix product with the
            # exact ``((solar × shading) × η) × window`` operand order of
            # ``window_energies_batch``.  Night windows (zero solar)
            # multiply to an exact 0.0 whatever the factor, so their
            # shading draws are skipped (pure function of the index —
            # skipping cannot perturb later values).
            first = batch[0].harvester
            shade = np.ones((len(batch), max_count))
            if first.shading_sigma != 0.0:
                day = solar_powers != 0.0
                if day.any():
                    grid = np.floor_divide(mids, first.shading_step_s).astype(
                        np.int64
                    )
                    for i, node in enumerate(batch):
                        mask = day[: counts[i]]
                        if mask.any():
                            shade[i, : counts[i]][mask] = kshading.gather(
                                node.harvester, grid[: counts[i]][mask]
                            )
            green = (
                (solar_powers[None, :] * shade) * first.efficiency
            ) * window_s
        else:
            # Rows are padded to the widest |T|; the scorer masks the
            # padding infeasible, so the pad values are never read.
            green = np.zeros((len(batch), max_count))
            for i, (node, count) in enumerate(zip(batch, counts)):
                green[i, :count] = node.forecaster.forecast_batch(
                    now_s, window_s, count, solar_powers=solar_powers[:count]
                )
        # One padded scoring call for the whole batch: rows carry their
        # own |T| (per-row utilities, feasibility masked past counts).
        decisions: Dict[int, Tuple[bool, int, float]] = {}
        result = batch_choose_windows_mixed(
            [node.mac for node in batch],
            np.array([node.battery.stored_j for node in batch]),
            green,
            [node.attempt_energy_j for node in batch],
            counts,
            now_s,
        )
        utilities = result.chosen_utilities()
        for i in range(len(batch)):
            decisions[i] = (
                bool(result.success[i]),
                int(result.window_index[i]),
                float(utilities[i]),
            )
    else:
        # ALOHA / threshold-only: window 0, always "scheduled"; the
        # linear utility of window 0 is exactly 1.0 for any |T|, and the
        # forecast is not consulted (no estimator/RNG side effects).
        decisions = {i: (True, 0, 1.0) for i in range(len(batch))}

    remaining = len(batch)
    for i, node in enumerate(batch):
        success, window_index, utility = decisions[i]
        if not success:
            node.metrics.record_failure(0, 0.0, energy_drop=True)
            if sim.packet_log is not None:
                sim.packet_log.append(
                    PacketRecord(
                        node_id=node.node_id,
                        generated_at_s=now_s,
                        window_index=-1,
                        attempts=0,
                        delivered=False,
                        latency_s=node.placement.period_s,
                        utility=0.0,
                        energy_drop=True,
                    )
                )
        else:
            node.metrics.record_window(window_index)
            tx_time = now_s + window_index * window_s
            absolute_window = int(tx_time // window_s)
            entry = WindowEntry(
                node=node,
                immediate=not config.use_window_selection,
                window_index_in_period=window_index,
                period_start_s=now_s,
                decision=_FastDecision(utility),
                offset_in_window_s=tx_time - absolute_window * window_s,
            )
            bucket = pending_windows.setdefault(absolute_window, [])
            bucket.append(entry)
            sim._export_intent(entry, absolute_window)
            if len(bucket) == 1:
                resolve_time = (absolute_window + 1) * window_s
                heapq.heappush(heap, (resolve_time, 1, seq, absolute_window))
        seq += 1
        next_start = now_s + node.placement.period_s
        if next_start <= duration:
            heapq.heappush(heap, (next_start, 0, seq, node.node_id))
            seq += 1
        # The scalar loop checks the peak after each event; at that point
        # the still-unprocessed cohort events would sit in its heap.
        remaining -= 1
        virtual_depth = len(heap) + remaining
        if virtual_depth > sim._peak_heap:
            sim._peak_heap = virtual_depth
    return seq


# --------------------------------------------------------------- resolution

#: Below this many participants (entries + statics) a window resolves
#: through the scalar reference resolver — same draws, less overhead.
_SMALL_RESOLVE_LIMIT = 4


def _resolve_single(entry: WindowEntry, window_s: float, config, rng) -> WindowOutcome:
    """Resolve an uncontended window without the pairwise machinery.

    Draw-for-draw identical to :func:`resolve_window` with one entry: a
    lone attempt succeeds iff any gateway hears the node above
    sensitivity (no interferers, and ω ≥ 1 always admits one signal);
    an out-of-range node burns its full retry budget, consuming the
    same backoff/channel draws.
    """
    node = entry.node
    airtime = node.airtime_s
    if entry.immediate:
        offset = entry.offset_in_window_s
    else:
        offset = rng.uniform(0.0, max(1e-6, window_s - airtime))
    rng.randrange(config.channel_count)
    end = offset + airtime
    if node.rssi_dbm >= node.sensitivity_dbm:
        return WindowOutcome(attempts=1, success=True, finish_offset_s=end)
    for _ in range(config.max_retransmissions):
        backoff = 2.0 + rng.uniform(1.0, 3.0)
        rng.randrange(config.channel_count)
        end = (end + backoff) + airtime
    return WindowOutcome(
        attempts=config.max_retransmissions + 1,
        success=False,
        finish_offset_s=end,
    )


# Re-exported for compatibility; the cache now lives with the
# contention kernel that consumes it.
_node_rssi_lin_mw = kcontention.node_rssi_lin_mw


def _resolve_window_vec(
    entries: List[WindowEntry],
    window_s: float,
    channel_count: int,
    omega: int,
    max_retransmissions: int,
    rng,
    capture_threshold_db: float = 6.0,
    static_attempts: Sequence = (),
) -> Dict[int, WindowOutcome]:
    """Array twin of :func:`resolve_window` (same draws, same bits).

    The scalar resolver interleaves no randomness with its pairwise
    scans: all round-0 offsets/channels are drawn first (entry order) and
    retry backoffs are drawn per round (start-sorted order), so the
    draws can be replicated verbatim while the O(batch × universe)
    overlap/concurrency/capture scan runs through the
    :mod:`repro.kernels.contention` round kernel.  The RNG draws stay
    here, in Python, in scalar order; the kernel only consumes the
    drawn placements.

    Callers must ensure entries reference distinct nodes and identical
    gateway counts; :func:`_resolve_batch` checks both.
    """
    k = len(entries)
    nodes = [entry.node for entry in entries]
    airtimes = [node.airtime_s for node in nodes]
    ctx = kcontention.ResolveContext(
        nodes, static_attempts, omega, capture_threshold_db
    )

    # Round-0 draws, exactly as the scalar entry loop makes them.
    starts0 = np.empty(k)
    chans0 = np.empty(k, dtype=np.int64)
    for i, entry in enumerate(entries):
        if entry.immediate:
            starts0[i] = entry.offset_in_window_s
        else:
            starts0[i] = rng.uniform(0.0, max(1e-6, window_s - airtimes[i]))
        chans0[i] = rng.randrange(channel_count)

    pend_starts = starts0
    pend_ends = starts0 + np.array(airtimes)
    pend_chans = chans0
    pend_entry = np.arange(k)
    pend_att = np.zeros(k, dtype=np.int64)

    # Universe of already-resolved attempts, in scalar emission order.
    res_starts: List[float] = []
    res_ends: List[float] = []
    res_chans: List[int] = []
    res_entry: List[int] = []
    per_entry_items: List[List[Tuple[int, float, bool]]] = [[] for _ in range(k)]

    while pend_starts.size:
        order = np.argsort(pend_starts, kind="stable")
        b_starts = pend_starts[order]
        b_ends = pend_ends[order]
        b_chans = pend_chans[order]
        b_entry = pend_entry[order]
        b_att = pend_att[order]
        kb = b_starts.size
        nres = len(res_starts)
        if nres:
            u_starts = np.concatenate([res_starts, b_starts])
            u_ends = np.concatenate([res_ends, b_ends])
            u_chans = np.concatenate([res_chans, b_chans])
            u_entry_arr = np.concatenate([res_entry, b_entry])
        else:
            u_starts, u_ends, u_chans, u_entry_arr = (
                b_starts,
                b_ends,
                b_chans,
                b_entry,
            )

        ok = kcontention.round_ok(
            ctx,
            b_starts,
            b_ends,
            b_chans,
            b_entry,
            u_starts,
            u_ends,
            u_chans,
            u_entry_arr,
            nres,
        )

        if not res_starts and ok.all():
            # Every round-0 attempt got through: emit outcomes straight
            # from the draw arrays, skipping the retry/aggregation
            # machinery (finish = each attempt's own end).
            ends0 = pend_ends.tolist()
            return {
                nodes[e].node_id: WindowOutcome(
                    attempts=1, success=True, finish_offset_s=ends0[e]
                )
                for e in range(k)
            }

        res_starts.extend(b_starts.tolist())
        res_ends.extend(b_ends.tolist())
        res_chans.extend(b_chans.tolist())
        res_entry.extend(b_entry.tolist())
        b_ends_list = b_ends.tolist()
        for i in range(kb):
            per_entry_items[b_entry[i]].append(
                (int(b_att[i]), b_ends_list[i], bool(ok[i]))
            )

        # Retry draws follow the scalar order: failures in batch order.
        new_starts: List[float] = []
        new_ends: List[float] = []
        new_chans: List[int] = []
        new_entry: List[int] = []
        new_att: List[int] = []
        for i in np.nonzero(~ok)[0]:
            att = int(b_att[i])
            if att >= max_retransmissions:
                continue
            backoff = 2.0 + rng.uniform(1.0, 3.0)
            chan = rng.randrange(channel_count)
            e = int(b_entry[i])
            start = b_ends_list[i] + backoff
            new_starts.append(start)
            new_ends.append(start + airtimes[e])
            new_chans.append(chan)
            new_entry.append(e)
            new_att.append(att + 1)
        pend_starts = np.array(new_starts)
        pend_ends = np.array(new_ends)
        pend_chans = np.array(new_chans, dtype=np.int64)
        pend_entry = np.array(new_entry, dtype=np.int64)
        pend_att = np.array(new_att, dtype=np.int64)

    outcomes: Dict[int, WindowOutcome] = {}
    for e in range(k):
        items = per_entry_items[e]  # already attempt_no-ascending
        attempts_used = 0
        success = False
        finish = items[-1][1]
        for att, end_s, hit in items:
            attempts_used = att + 1
            if hit:
                success = True
                finish = end_s
                break
        outcomes[nodes[e].node_id] = WindowOutcome(
            attempts=attempts_used, success=success, finish_offset_s=finish
        )
    return outcomes


def _resolve_batch(
    sim,
    entries: List[WindowEntry],
    window_index: int,
    window_s: float,
    shared_solar,
) -> None:
    """Vectorized twin of ``MesoscopicSimulator._resolve``.

    Contended windows reuse the scalar :func:`resolve_window` (shared
    RNG, identical draws); uncontended ones take the single-entry fast
    path.  Settles are planned through the batched kernel, then
    per-entry bookkeeping follows the scalar order.
    """
    node_ids = [entry.node.node_id for entry in entries]
    if len(set(node_ids)) != len(node_ids):
        # A node transmitting twice in one absolute window would make
        # the precomputed settle plan see stale state; defer to the
        # scalar path (same RNG consumption either way).
        sim._resolve(entries, window_index, window_s)
        return
    config = sim.config
    statics = sim._statics_for(window_index)
    if len(entries) == 1 and not statics:
        outcomes = {
            node_ids[0]: _resolve_single(entries[0], window_s, config, sim.rng)
        }
    else:
        gateway_counts = {len(entry.node.rssi_by_gateway) for entry in entries}
        if len(entries) + len(statics) <= _SMALL_RESOLVE_LIMIT:
            # Tiny windows: the scalar reference resolver's pairwise
            # loops beat the array machinery's fixed overhead (it is
            # draw-for-draw the same resolver, so bit-identity is free).
            resolver = resolve_window
        elif len(gateway_counts) == 1:
            resolver = _resolve_window_vec
        else:
            resolver = resolve_window
        outcomes = resolver(
            entries,
            window_s=window_s,
            channel_count=config.channel_count,
            omega=config.omega,
            max_retransmissions=config.max_retransmissions,
            rng=sim.rng,
            static_attempts=statics,
        )
    window_start = window_index * window_s
    observe = config.forecaster == "persistence"
    items = []
    for entry in entries:
        outcome = outcomes[entry.node.node_id]
        demand = outcome.attempts * entry.node.attempt_energy_j
        settle_time = max(
            window_start + outcome.finish_offset_s, entry.node.settled_until_s
        )
        items.append((entry.node, settle_time, demand))
    shortfalls = _settle_items(items, shared_solar, sim.config.settle_chunk_s())
    for entry, (node, _, demand), shortfall in zip(entries, items, shortfalls):
        outcome = outcomes[node.node_id]
        decision = entry.decision
        if shortfall > demand * 0.5:
            # The battery could not fund the attempts: brown-out.
            node.metrics.record_failure(
                retransmissions=outcome.attempts - 1,
                tx_energy_j=0.0,
                energy_drop=True,
            )
            if sim.packet_log is not None:
                sim.packet_log.append(
                    PacketRecord(
                        node_id=node.node_id,
                        generated_at_s=entry.period_start_s,
                        window_index=entry.window_index_in_period,
                        attempts=0,
                        delivered=False,
                        latency_s=node.placement.period_s,
                        utility=0.0,
                        energy_drop=True,
                    )
                )
            node.mac.observe_result(
                entry.window_index_in_period,
                min(outcome.attempts - 1, config.max_retransmissions),
                demand,
            )
            continue
        tx_metric = outcome.attempts * node.tx_energy_j
        retx = outcome.attempts - 1
        if outcome.success:
            latency = max(
                node.airtime_s + sim.ACK_DELAY_S,
                (window_start - entry.period_start_s)
                + outcome.finish_offset_s
                + sim.ACK_DELAY_S,
            )
            node.metrics.record_delivery(
                retransmissions=retx,
                tx_energy_j=tx_metric,
                utility=decision.utility,
                latency_s=latency,
            )
        else:
            node.metrics.record_failure(
                retransmissions=retx, tx_energy_j=tx_metric
            )
        node.mac.observe_result(entry.window_index_in_period, retx, demand)
        if sim.packet_log is not None:
            sim.packet_log.append(
                PacketRecord(
                    node_id=node.node_id,
                    generated_at_s=entry.period_start_s,
                    window_index=entry.window_index_in_period,
                    attempts=outcome.attempts,
                    delivered=outcome.success,
                    latency_s=latency
                    if outcome.success
                    else node.placement.period_s,
                    utility=decision.utility if outcome.success else 0.0,
                    energy_drop=False,
                )
            )
        if observe:
            # Only the persistence forecaster learns from observe();
            # oracle and noisy no-op, and ``window_energy_j`` is a pure
            # function (its caches are value-deterministic), so skipping
            # the feedback entirely is observationally equivalent.
            node.forecaster.observe(
                window_start,
                window_s,
                node.harvester.window_energy_j(window_start, window_s),
            )


# ------------------------------------------------------------------- sweep


def _refresh_batch(sim, now_s: float, shared_solar) -> None:
    """Batched twin of ``MesoscopicSimulator._refresh_degradation``."""
    started = time.perf_counter()
    compact = sim.config.effective_compact_trace()
    exempt = sim.config.effective_sample_nodes() if compact else None
    nodes = list(sim.nodes.values())
    _settle_items(
        [(node, now_s, 0.0) for node in nodes],
        shared_solar,
        sim.config.settle_chunk_s(),
    )
    for node in nodes:
        degradation = node.battery.refresh_degradation()
        if compact and (exempt is None or node.node_id not in exempt):
            node.battery.trace.compact_tail()
        node.metrics.degradation = degradation
        breakdown = node.battery.last_breakdown
        if breakdown is not None:
            node.metrics.cycle_aging = breakdown.cycle
            node.metrics.calendar_aging = breakdown.calendar
        sim.service.set_degradation(node.node_id, degradation)
    for node in nodes:
        node.mac.set_normalized_degradation(
            sim.service.normalized_degradation(node.node_id)
        )
    sim._record_refresh_wall(now_s, time.perf_counter() - started)


def run_sweep(sim) -> List[MonthlySample]:
    """Execute the full event sweep through the vectorized kernels.

    Produces the same metrics, packet log, degradation refreshes and
    heap accounting as ``MesoscopicSimulator._run_sweep``.  Loop state
    lives in the same (checkpointable) :class:`_SweepState`, so this
    path writes and resumes the same snapshots as the scalar sweep.
    """
    config = sim.config
    window_s = config.window_s
    duration = config.duration_s
    nodes = sim.nodes
    shared_solar = next(iter(nodes.values())).harvester.solar

    PERIOD = 0
    state = sim._sweep_state
    if state is None:
        state = sim._sweep_state = _SweepState.initial(sim)
    heap = state.heap
    pending_windows = state.pending_windows
    monthly = state.monthly
    seq = state.seq
    next_refresh = state.next_refresh
    month_s = SECONDS_PER_YEAR / 12.0
    next_month = state.next_month
    month_index = state.month_index
    iterations = 0

    while heap and heap[0][0] <= duration:
        if heap[0][0] >= state.next_checkpoint:
            state.seq = seq
            state.next_refresh = next_refresh
            state.next_month = next_month
            state.month_index = month_index
            sim._checkpoint_before(heap[0][0], state)
        iterations += 1
        if iterations % 256 == 0 and stop_requested():
            state.seq = seq
            state.next_refresh = next_refresh
            state.next_month = next_month
            state.month_index = month_index
            sim._interrupted(heap[0][0])
        time_s, kind, _, payload = heapq.heappop(heap)
        sim._events_executed += 1

        while next_refresh <= time_s:
            _refresh_batch(sim, next_refresh, shared_solar)
            next_refresh += config.dissemination_interval_s
        while next_month <= time_s:
            month_index += 1
            values = [n.metrics.degradation for n in nodes.values()]
            monthly.append(
                MonthlySample(
                    month=month_index,
                    max_degradation=max(values),
                    mean_degradation=sum(values) / len(values),
                )
            )
            next_month += month_s

        if kind == PERIOD:
            # Pop the whole same-instant cohort: processing a PERIOD
            # event never enqueues another event at its own timestamp,
            # so these are exactly the events the scalar loop would pop
            # consecutively (time equal, kind equal, seq ascending).
            batch = [nodes[payload]]
            while heap and heap[0][0] == time_s and heap[0][1] == PERIOD:
                _, _, _, other = heapq.heappop(heap)
                sim._events_executed += 1
                batch.append(nodes[other])
            seq = _start_period_batch(
                sim,
                batch,
                time_s,
                pending_windows,
                heap,
                seq,
                shared_solar,
                duration,
            )
        else:  # RESOLVE at the end of absolute window `payload`
            entries = pending_windows.pop(payload, [])
            if entries:
                _resolve_batch(sim, entries, payload, window_s, shared_solar)
            if len(heap) > sim._peak_heap:
                sim._peak_heap = len(heap)

    state.seq = seq
    state.next_refresh = next_refresh
    state.next_month = next_month
    state.month_index = month_index
    # Flush any windows scheduled past the horizon.
    for window_index, entries in sorted(pending_windows.items()):
        _resolve_batch(sim, entries, window_index, window_s, shared_solar)
    pending_windows.clear()
    return monthly
