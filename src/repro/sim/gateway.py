"""Gateway model for the event-driven simulator.

A LoRa gateway (e.g. the paper's RAK2245) can lock onto at most ω
concurrent transmissions; signals below sensitivity or beyond the
demodulator budget are not received but still contribute interference.
Collisions are resolved pairwise on (time, channel, SF) overlap with the
capture effect, matching the NS-3 LoRaWAN module's behaviour the paper
builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..exceptions import InvariantError
from ..lora import CollisionDetector, Transmission, TxParams
from ..lora.params import SENSITIVITY_DBM


@dataclass
class ReceptionToken:
    """Tracks one in-flight uplink at the gateway."""

    transmission: Transmission
    locked: bool


@dataclass
class GatewayStats:
    """Gateway-side counters (diagnostics for the engine's reports)."""

    receptions_started: int = 0
    receptions_locked: int = 0
    lost_below_sensitivity: int = 0
    lost_demodulator_busy: int = 0
    lost_collision: int = 0
    delivered: int = 0


class Gateway:
    """ω-demodulator gateway with collision and capture resolution."""

    def __init__(self, omega: int, capture_effect: bool = True) -> None:
        if omega < 1:
            raise InvariantError("omega must be >= 1")
        self._omega = omega
        self._detector = CollisionDetector(capture_effect=capture_effect)
        self._locked_count = 0
        self.stats = GatewayStats()

    @property
    def omega(self) -> int:
        """ω — demodulators available at this gateway."""
        return self._omega

    @property
    def locked_count(self) -> int:
        """Receptions currently holding a demodulator."""
        return self._locked_count

    def begin_reception(self, tx: Transmission, params: TxParams) -> ReceptionToken:
        """Register the start of an uplink at the gateway.

        The transmission always enters the interference pool; it is only
        *locked* (candidate for decoding) when it clears sensitivity and
        a demodulator is free.
        """
        self.stats.receptions_started += 1
        sensitivity = SENSITIVITY_DBM[(params.spreading_factor, params.bandwidth_hz)]
        locked = True
        if tx.rssi_dbm < sensitivity:
            locked = False
            self.stats.lost_below_sensitivity += 1
        elif self._locked_count >= self._omega:
            locked = False
            self.stats.lost_demodulator_busy += 1
        if locked:
            self._locked_count += 1
            self.stats.receptions_locked += 1
        self._detector.begin(tx)
        return ReceptionToken(transmission=tx, locked=locked)

    def end_reception(self, token: ReceptionToken) -> bool:
        """Finish an uplink; True when it was decoded successfully."""
        survived = self._detector.end(token.transmission)
        if token.locked:
            self._locked_count -= 1
            if self._locked_count < 0:
                raise InvariantError("demodulator count went negative")
        if not token.locked:
            return False
        if not survived:
            self.stats.lost_collision += 1
            return False
        self.stats.delivered += 1
        return True
