"""Deployment topology: node placement and spreading-factor assignment.

The paper places nodes "randomly with a maximum distance from the
gateway of 5 km, simulating a dense deployment".  We place nodes
uniformly in the disk and assign each either the configured fixed SF or
the smallest SF whose link budget reaches the node's distance (the
distance-ring scheme of the NS-3 LoRaWAN module).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..exceptions import ConfigurationError
from ..lora import LogDistanceLink, SpreadingFactor, TxParams
from .config import SimulationConfig


@dataclass(frozen=True)
class NodePlacement:
    """Static placement facts of one node.

    ``distance_m`` is the distance to the *nearest* gateway (which also
    drives SF assignment); ``gateway_distances_m`` holds the distance to
    every gateway for multi-gateway reception diversity.
    """

    node_id: int
    x_m: float
    y_m: float
    distance_m: float
    spreading_factor: SpreadingFactor
    period_s: float
    start_offset_s: float
    gateway_distances_m: tuple = ()

    def __post_init__(self) -> None:
        if not self.gateway_distances_m:
            object.__setattr__(self, "gateway_distances_m", (self.distance_m,))


def gateway_positions(config: SimulationConfig) -> List[tuple]:
    """Gateway coordinates: origin first, extras on a 0.6 R ring."""
    positions = [(0.0, 0.0)]
    extra = config.gateway_count - 1
    ring = 0.6 * config.radius_m
    for i in range(extra):
        angle = 2.0 * math.pi * i / extra
        positions.append((ring * math.cos(angle), ring * math.sin(angle)))
    return positions


def uniform_disk_point(rng: random.Random, radius_m: float) -> tuple:
    """Uniform random point in a disk of the given radius."""
    angle = rng.uniform(0.0, 2.0 * math.pi)
    # sqrt for area-uniform sampling.
    r = radius_m * math.sqrt(rng.random())
    return r * math.cos(angle), r * math.sin(angle)


def assign_spreading_factor(
    distance_m: float,
    link: LogDistanceLink,
    base_params: TxParams,
    antenna_gain_db: float = 0.0,
) -> SpreadingFactor:
    """Smallest SF that closes the link at ``distance_m``.

    Falls back to SF12 when even the maximum SF is out of budget (such a
    node will simply never be heard — the same behaviour NS-3 exhibits).
    """
    for sf in SpreadingFactor:
        params = base_params.with_spreading_factor(sf)
        if link.is_receivable(params, distance_m, antenna_gain_db=antenna_gain_db):
            return sf
    return SpreadingFactor.SF12


def sample_period_s(rng: random.Random, low_s: float, high_s: float) -> float:
    """Sampling period drawn uniformly from whole minutes in [low, high].

    The paper draws from [16, 60] minutes; whole-minute granularity makes
    same-period cohorts (and their persistent ALOHA collisions) explicit.
    """
    if high_s < low_s:
        raise ConfigurationError("invalid period range")
    low_min = int(round(low_s / 60.0))
    high_min = int(round(high_s / 60.0))
    if high_min < low_min:
        raise ConfigurationError("period range narrower than one minute")
    return rng.randint(low_min, high_min) * 60.0


def cell_of(placement: NodePlacement) -> int:
    """Gateway cell a node belongs to: index of its nearest gateway.

    Ties break toward the lower gateway index (``min`` scans in order),
    matching how ``distance_m`` itself was computed.
    """
    distances = placement.gateway_distances_m
    return min(range(len(distances)), key=distances.__getitem__)


def partition_cells(
    placements: Sequence[NodePlacement],
) -> Dict[int, List[NodePlacement]]:
    """Group placements by gateway cell (cells in ascending index order).

    Empty cells are omitted; the sharded engine simulates each returned
    cell as an independent contention domain.
    """
    cells: Dict[int, List[NodePlacement]] = {}
    for placement in placements:
        cells.setdefault(cell_of(placement), []).append(placement)
    return {index: cells[index] for index in sorted(cells)}


def pack_cells(cell_indices: Sequence[int], shards: int) -> List[List[int]]:
    """Pack cell indices into ``shards`` round-robin groups.

    Packing only decides which worker process simulates which cells —
    cell results are independent of it — so any shard count from 1 to
    the cell count produces identical simulation output.
    """
    if shards < 1:
        raise ConfigurationError("shards must be >= 1")
    groups: List[List[int]] = [[] for _ in range(min(shards, len(cell_indices)))]
    for position, cell_index in enumerate(sorted(cell_indices)):
        groups[position % len(groups)].append(cell_index)
    return groups


def build_topology(
    config: SimulationConfig, link: Optional[LogDistanceLink] = None
) -> List[NodePlacement]:
    """Instantiate the deployment described by ``config``."""
    rng = random.Random(config.seed)
    link = link or LogDistanceLink(path_loss_exponent=config.path_loss_exponent)
    base_params = config.tx_params()
    gateways = gateway_positions(config)
    placements: List[NodePlacement] = []
    for node_id in range(config.node_count):
        x, y = uniform_disk_point(rng, config.radius_m)
        distances = tuple(
            max(1.0, math.hypot(x - gx, y - gy)) for gx, gy in gateways
        )
        distance = min(distances)
        if config.fixed_sf is not None:
            sf = config.fixed_sf
        else:
            sf = assign_spreading_factor(
                distance, link, base_params, config.gateway_antenna_gain_db
            )
        period_s = sample_period_s(rng, *config.period_range_s)
        if config.synchronized_start:
            start_offset = (
                rng.uniform(0.0, config.start_jitter_s)
                if config.start_jitter_s > 0
                else 0.0
            )
        else:
            start_offset = rng.uniform(0.0, period_s)
        placements.append(
            NodePlacement(
                node_id=node_id,
                x_m=x,
                y_m=y,
                distance_m=distance,
                spreading_factor=sf,
                period_s=period_s,
                start_offset_s=start_offset,
                gateway_distances_m=distances,
            )
        )
    return placements
