"""Atomic file-write helpers.

Every JSON/JSONL artifact the library produces (manifests, metrics
exports, sweep reports, checkpoints, benchmark reports) is written
through these helpers: the payload goes to a temporary file in the
target directory, is flushed and fsynced, then renamed over the final
path with :func:`os.replace`.  A crash mid-write can therefore never
leave a torn file — readers see either the old content or the new,
complete content.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp file + ``os.replace``)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_text(path: str, text: str, encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` atomically."""
    atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(path: str, payload: Any, indent: int = 2) -> None:
    """Serialize ``payload`` as sorted-key JSON and write it atomically."""
    atomic_write_text(
        path, json.dumps(payload, indent=indent, sort_keys=True) + "\n"
    )
