"""Compressed state-of-charge traces and node→gateway transition reports.

Storing every per-window SoC sample for multi-year simulations would be
prohibitive, and the paper observes it is also unnecessary: *"the SoC at
the forecast window when the battery transitions from charging to
discharging and vice-versa are sufficient to generate the entire trace"*
(Section III-B).  :class:`SocTrace` therefore keeps only turning points
(plus a bounded sampling of time for the time-weighted mean), and
:class:`TransitionReport` models the 4-byte per-packet report each node
piggybacks (discharge window + SoC, last recharge window + SoC).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class TransitionReport:
    """The per-sampling-period battery report a node appends to a packet.

    Per Section III-B the node reports two forecast windows: the one where
    it (significantly) discharged for its transmission and the last one
    where it recharged, each with the SoC at that time.  Encoded size is
    2 bytes per window index + 2 bytes per quantized SoC = 4 bytes total
    as stated in the paper ("2 × 2 bytes for t and ψ_u[t]").
    """

    discharge_window: Optional[int]
    discharge_soc: Optional[float]
    recharge_window: Optional[int]
    recharge_soc: Optional[float]

    #: Wire size in bytes of one report (paper: 4 bytes, 41 ms extra
    #: airtime at SF10/125 kHz).
    WIRE_SIZE_BYTES = 4

    def encode(self) -> bytes:
        """Pack the report into its 4-byte wire format.

        Window indices use 1 byte each (windows per period ≤ 255 in all
        realistic configurations); SoC is quantized to 1 byte (1/255
        resolution).  ``None`` fields encode as 0xFF sentinels.
        """
        def _window_byte(w: Optional[int]) -> int:
            if w is None:
                return 0xFF
            if not 0 <= w < 0xFF:
                raise ConfigurationError(f"window index {w} not encodable")
            return w

        def _soc_byte(s: Optional[float]) -> int:
            if s is None:
                return 0xFF
            if not 0.0 <= s <= 1.0:
                raise ConfigurationError(f"SoC {s} outside [0, 1]")
            return min(254, round(s * 254))

        return bytes(
            [
                _window_byte(self.discharge_window),
                _soc_byte(self.discharge_soc),
                _window_byte(self.recharge_window),
                _soc_byte(self.recharge_soc),
            ]
        )

    @classmethod
    def decode(cls, payload: bytes) -> "TransitionReport":
        """Inverse of :meth:`encode`."""
        if len(payload) != cls.WIRE_SIZE_BYTES:
            raise ConfigurationError(
                f"transition report must be {cls.WIRE_SIZE_BYTES} bytes"
            )
        dw, ds, rw, rs = payload
        return cls(
            discharge_window=None if dw == 0xFF else dw,
            discharge_soc=None if ds == 0xFF else ds / 254.0,
            recharge_window=None if rw == 0xFF else rw,
            recharge_soc=None if rs == 0xFF else rs / 254.0,
        )


@dataclass
class SocTrace:
    """A turning-point-compressed SoC history with time-weighted statistics.

    ``append(time_s, soc)`` records a sample; interior samples that keep
    the current monotone run are merged so memory stays proportional to
    the number of charge/discharge direction changes, not to simulated
    time.  The running time-weighted SoC integral is maintained exactly
    (trapezoidal) regardless of compression.
    """

    times: List[float] = field(default_factory=list)
    socs: List[float] = field(default_factory=list)
    _weighted_integral: float = 0.0
    _start_time: Optional[float] = None
    _last_time: Optional[float] = None
    _last_soc: Optional[float] = None

    def append(self, time_s: float, soc: float) -> None:
        """Record that the SoC was ``soc`` at absolute time ``time_s``."""
        if not 0.0 <= soc <= 1.0 + 1e-9:
            raise ConfigurationError(f"SoC {soc} outside [0, 1]")
        soc = min(soc, 1.0)
        if self._start_time is None:
            self._start_time = time_s
        if self._last_time is not None:
            if time_s < self._last_time:
                raise ConfigurationError("trace times must be non-decreasing")
            dt = time_s - self._last_time
            self._weighted_integral += dt * (soc + self._last_soc) / 2.0

        if len(self.socs) >= 2 and self._is_monotone_continuation(soc):
            self.times[-1] = time_s
            self.socs[-1] = soc
        else:
            self.times.append(time_s)
            self.socs.append(soc)
        self._last_time = time_s
        self._last_soc = soc

    def _is_monotone_continuation(self, soc: float) -> bool:
        prev, last = self.socs[-2], self.socs[-1]
        if last > prev:
            return soc >= last
        if last < prev:
            return soc <= last
        return soc == last

    def extend(self, samples: Sequence[Tuple[float, float]]) -> None:
        """Append many ``(time_s, soc)`` samples."""
        for time_s, soc in samples:
            self.append(time_s, soc)

    def extend_batch(self, times_s, socs) -> None:
        """Batched :meth:`extend`: state-identical, O(runs) list writes.

        The integral accumulates with the exact per-sample update in the
        scalar order, and monotone runs collapse onto the provisional
        last point in one write instead of one per sample — the same
        merge :meth:`append` performs step by step, without the
        per-sample method-call and bookkeeping overhead.  Validation
        happens up front, so unlike sequential appends an invalid sample
        rejects the whole batch.
        """
        n = len(socs)
        if n == 0:
            return
        times = [float(t) for t in times_s]
        clamped = []
        for s in socs:
            s = float(s)
            if not 0.0 <= s <= 1.0 + 1e-9:
                raise ConfigurationError(f"SoC {s} outside [0, 1]")
            clamped.append(min(s, 1.0))
        socs = clamped
        last_t = self._last_time
        if last_t is not None and times[0] < last_t:
            raise ConfigurationError("trace times must be non-decreasing")
        if any(times[i + 1] < times[i] for i in range(n - 1)):
            raise ConfigurationError("trace times must be non-decreasing")

        if self._start_time is None:
            self._start_time = times[0]
        integral = self._weighted_integral
        prev_t, prev_s = last_t, self._last_soc
        for i in range(n):
            if prev_t is not None:
                # The first-ever sample contributes no trapezoid.
                integral += (times[i] - prev_t) * (socs[i] + prev_s) / 2.0
            prev_t, prev_s = times[i], socs[i]
        self._weighted_integral = integral

        ts, ss = self.times, self.socs
        i = 0
        while i < n:
            s = socs[i]
            if len(ss) >= 2:
                prev, last = ss[-2], ss[-1]
                if last > prev:
                    if s >= last:
                        j = i
                        while j + 1 < n and socs[j + 1] >= socs[j]:
                            j += 1
                        ts[-1] = times[j]
                        ss[-1] = socs[j]
                        i = j + 1
                        continue
                elif last < prev:
                    if s <= last:
                        j = i
                        while j + 1 < n and socs[j + 1] <= socs[j]:
                            j += 1
                        ts[-1] = times[j]
                        ss[-1] = socs[j]
                        i = j + 1
                        continue
                elif s == last:
                    # A flat pair only continues with equal samples.
                    j = i
                    while j + 1 < n and socs[j + 1] == socs[j]:
                        j += 1
                    ts[-1] = times[j]
                    ss[-1] = socs[j]
                    i = j + 1
                    continue
            ts.append(times[i])
            ss.append(s)
            i += 1
        self._last_time = times[-1]
        self._last_soc = socs[-1]

    @property
    def turning_points(self) -> List[float]:
        """The compressed SoC sequence (input for rainflow counting)."""
        return list(self.socs)

    @property
    def duration_s(self) -> float:
        """Time spanned by the trace since its first sample (0 if empty)."""
        if self._start_time is None or self._last_time is None:
            return 0.0
        return self._last_time - self._start_time

    def time_weighted_mean_soc(self) -> float:
        """Trapezoidal time-weighted average SoC across the whole trace.

        Exact regardless of turning-point compression or
        :meth:`compact_tail`, because the integral is maintained online.
        """
        if self._last_time is None:
            raise ConfigurationError("cannot average an empty trace")
        duration = self._last_time - self._start_time
        if duration <= 0.0:
            return self._last_soc
        return self._weighted_integral / duration

    @property
    def last_soc(self) -> Optional[float]:
        """Most recent SoC sample (None for an empty trace)."""
        return self._last_soc

    @property
    def last_time(self) -> Optional[float]:
        """Time of the most recent sample (None for an empty trace)."""
        return self._last_time

    def __len__(self) -> int:
        return len(self.socs)

    def compact_tail(self, keep_last: int = 2) -> None:
        """Drop stored turning points, keeping aggregate statistics.

        After degradation has been computed up to now, callers may trim
        the stored points to bound memory over decades-long simulations.
        The time-weighted integral is preserved.
        """
        if keep_last < 1:
            raise ConfigurationError("keep_last must be >= 1")
        if len(self.socs) > keep_last:
            self.times = self.times[-keep_last:]
            self.socs = self.socs[-keep_last:]


def reconstruct_trace(
    reports: Sequence[TransitionReport],
    period_s: float,
    window_s: float,
    initial_soc: float = 1.0,
) -> SocTrace:
    """Rebuild an approximate SoC trace from piggybacked reports.

    This is the gateway-side counterpart of :class:`TransitionReport`:
    given one report per sampling period, it reconstructs the turning
    points the rainflow algorithm needs.  Report ``i`` describes period
    ``i`` (absolute time ``i * period_s``); window indices are offsets of
    ``window_s`` within the period.
    """
    if period_s <= 0 or window_s <= 0:
        raise ConfigurationError("period and window must be positive")
    trace = SocTrace()
    trace.append(0.0, initial_soc)
    for index, report in enumerate(reports):
        base = index * period_s
        events = []
        if report.discharge_window is not None and report.discharge_soc is not None:
            events.append((base + report.discharge_window * window_s, report.discharge_soc))
        if report.recharge_window is not None and report.recharge_soc is not None:
            events.append((base + report.recharge_window * window_s, report.recharge_soc))
        for time_s, soc in sorted(events):
            if trace.last_time is not None and time_s <= trace.last_time:
                time_s = trace.last_time + 1e-6
            trace.append(time_s, soc)
    return trace
