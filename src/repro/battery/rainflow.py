"""Rainflow cycle counting (ASTM E1049-85, three-point method).

The degradation model needs, from a battery's SoC trace, the set of
charge-discharge cycles: for each cycle its *cycle discharge* ``δ`` (the
SoC range, i.e. max − min within the cycle), its *average SoC* ``φ`` (the
cycle mean), and its *cycle type* ``η`` (1.0 for a full cycle, 0.5 for a
half cycle from the residue).  The paper computes exactly these with "the
rainflow-counting algorithm [13]".

The implementation follows the classic three-point ASTM procedure:
turning points are extracted first, then ranges are paired; ranges that
involve the first point of the history are counted as half cycles, the
residue at the end likewise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class Cycle:
    """One counted charge-discharge cycle.

    Attributes
    ----------
    depth:
        The cycle discharge ``δ`` — SoC range swept by the cycle.
    mean_soc:
        The cycle's average SoC ``φ`` (midpoint of the excursion).
    weight:
        The cycle type ``η`` — 1.0 for full cycles, 0.5 for half cycles.
    """

    depth: float
    mean_soc: float
    weight: float

    def __post_init__(self) -> None:
        if self.depth < 0:
            raise ConfigurationError("cycle depth cannot be negative")
        if self.weight not in (0.5, 1.0):
            raise ConfigurationError("cycle weight must be 0.5 or 1.0")


def extract_reversals(series: Sequence[float]) -> List[float]:
    """Reduce a series to its turning points (local extrema).

    The first and last samples are always kept.  Consecutive duplicate
    values are merged; interior points where the slope keeps its sign are
    dropped.  A series with fewer than two distinct values has no
    reversals and returns at most one point.
    """
    points: List[float] = []
    for value in series:
        value = float(value)
        if points and value == points[-1]:
            continue
        if len(points) >= 2:
            rising_before = points[-1] > points[-2]
            rising_now = value > points[-1]
            if rising_before == rising_now:
                points[-1] = value
                continue
        points.append(value)
    return points


def count_cycles(series: Sequence[float]) -> List[Cycle]:
    """Count rainflow cycles in a (SoC) series.

    Returns the list of :class:`Cycle` objects, full cycles first as they
    are closed, then the residue as half cycles.  An empty or monotone
    series yields, respectively, no cycles or a single half cycle.
    """
    reversals = extract_reversals(series)
    cycles: List[Cycle] = []
    stack: List[float] = []

    for point in reversals:
        stack.append(point)
        while len(stack) >= 3:
            x = abs(stack[-1] - stack[-2])
            y = abs(stack[-2] - stack[-3])
            if x < y:
                break
            if len(stack) == 3:
                # Range Y contains the starting point: count as half cycle.
                cycles.append(_make_cycle(stack[0], stack[1], weight=0.5))
                stack.pop(0)
            else:
                cycles.append(_make_cycle(stack[-3], stack[-2], weight=1.0))
                del stack[-3:-1]

    # Residue: remaining ranges are half cycles.
    for a, b in zip(stack, stack[1:]):
        cycles.append(_make_cycle(a, b, weight=0.5))
    return cycles


def _make_cycle(a: float, b: float, weight: float) -> Cycle:
    return Cycle(depth=abs(a - b), mean_soc=(a + b) / 2.0, weight=weight)


class StreamingRainflow:
    """Incremental three-point rainflow over a growing series.

    Feeds on raw samples one at a time (:meth:`push`) and maintains the
    same state the batch :func:`count_cycles` would reach on the series
    so far: the confirmed turning points collapsed into the three-point
    stack, with cycles *emitted as they close*.  The last sample is
    provisional — a later sample continuing the same monotone run
    replaces it, exactly like :func:`extract_reversals` — so cycles the
    final point would close, plus the ASTM half-cycle residue, are
    produced on demand by :meth:`pending_cycles` without consuming them.

    The concatenation ``closed cycles (in emission order) + pending_cycles()``
    is element-for-element identical to ``count_cycles(series)``, which is
    what lets the degradation pipeline aggregate closed cycles once and
    refresh in O(new points) instead of O(trace).

    ``on_cycle`` is invoked with each cycle the moment it closes; when it
    is None, closed cycles accumulate on :attr:`closed` instead (handy
    for tests; long-lived consumers should pass a callback and fold the
    cycle into an aggregate so memory stays bounded).
    """

    __slots__ = ("_stack", "_prev", "_tail", "_have_prev", "_on_cycle", "closed")

    def __init__(self, on_cycle: Optional[Callable[[Cycle], None]] = None) -> None:
        self._stack: List[float] = []
        self._prev: float = 0.0
        self._tail: Optional[float] = None
        self._have_prev = False
        self._on_cycle = on_cycle
        #: Closed cycles, recorded only when no ``on_cycle`` callback is set.
        self.closed: List[Cycle] = []

    def push(self, value: float) -> None:
        """Consume the next raw sample of the series."""
        value = float(value)
        tail = self._tail
        if tail is None:
            self._tail = value
            return
        if value == tail:
            return
        if not self._have_prev:
            # The first point is fixed once a second distinct value
            # arrives (extract_reversals only ever rewrites the tail).
            self._confirm(tail)
            self._prev = tail
            self._tail = value
            self._have_prev = True
            return
        if (tail > self._prev) == (value > tail):
            # Monotone continuation: the provisional tail moves.
            self._tail = value
            return
        self._confirm(tail)
        self._prev = tail
        self._tail = value

    def extend(self, series: Iterable[float]) -> None:
        """Consume many samples."""
        for value in series:
            self.push(value)

    def extend_batch(self, values) -> None:
        """Consume an array of samples; state-identical to :meth:`extend`.

        Only direction changes can confirm a turning point (and close
        cycles), and those go through the scalar :meth:`push`; run
        interiors merely move the provisional tail, so each monotone run
        collapses to a single tail assignment.
        """
        n = len(values)
        i = 0
        while i < n and (self._tail is None or not self._have_prev):
            self.push(float(values[i]))
            i += 1
        while i < n:
            v = float(values[i])
            tail = self._tail
            if v == tail:
                i += 1
                continue
            if (v > tail) == (tail > self._prev):
                # Monotone continuation: jump the tail to the run's end.
                if v > tail:
                    j = i
                    while j + 1 < n and values[j + 1] >= values[j]:
                        j += 1
                else:
                    j = i
                    while j + 1 < n and values[j + 1] <= values[j]:
                        j += 1
                self._tail = float(values[j])
                i = j + 1
            else:
                self.push(v)
                i += 1

    def _confirm(self, point: float) -> None:
        """A turning point became final: run the three-point closure."""
        stack = self._stack
        stack.append(point)
        while len(stack) >= 3:
            x = abs(stack[-1] - stack[-2])
            y = abs(stack[-2] - stack[-3])
            if x < y:
                break
            if len(stack) == 3:
                # Range Y contains the starting point: count as half cycle.
                self._emit(_make_cycle(stack[0], stack[1], weight=0.5))
                stack.pop(0)
            else:
                self._emit(_make_cycle(stack[-3], stack[-2], weight=1.0))
                del stack[-3:-1]

    def _emit(self, cycle: Cycle) -> None:
        if self._on_cycle is not None:
            self._on_cycle(cycle)
        else:
            self.closed.append(cycle)

    def pending_cycles(self) -> List[Cycle]:
        """Cycles the batch algorithm would count beyond the closed ones.

        Simulates pushing the provisional tail through the three-point
        closure (cycles the endpoint closes) and then pairing the
        remaining stack into ASTM half-cycle residue, in exactly the
        order :func:`count_cycles` produces them.  Does not mutate the
        streaming state; O(stack depth).
        """
        cycles: List[Cycle] = []
        if self._tail is None or not self._have_prev:
            # Zero or one reversal so far: no cycles, empty residue.
            return cycles
        stack = list(self._stack)
        stack.append(self._tail)
        while len(stack) >= 3:
            x = abs(stack[-1] - stack[-2])
            y = abs(stack[-2] - stack[-3])
            if x < y:
                break
            if len(stack) == 3:
                cycles.append(_make_cycle(stack[0], stack[1], weight=0.5))
                stack.pop(0)
            else:
                cycles.append(_make_cycle(stack[-3], stack[-2], weight=1.0))
                del stack[-3:-1]
        for a, b in zip(stack, stack[1:]):
            cycles.append(_make_cycle(a, b, weight=0.5))
        return cycles

    def cycles(self) -> List[Cycle]:
        """Closed-so-far plus pending cycles (requires no ``on_cycle``)."""
        if self._on_cycle is not None:
            raise ConfigurationError(
                "cycles() needs stored closed cycles; an on_cycle callback "
                "consumes them instead"
            )
        return self.closed + self.pending_cycles()


def cycle_statistics(cycles: Iterable[Cycle]) -> Tuple[float, float, float]:
    """Aggregate (equivalent_full_cycles, mean_depth, mean_soc) of cycles.

    ``equivalent_full_cycles`` is the weight-sum (a half cycle counts
    0.5); the means are weight-averaged.  All three are 0 for no cycles.
    """
    total_weight = 0.0
    depth_sum = 0.0
    soc_sum = 0.0
    for cycle in cycles:
        total_weight += cycle.weight
        depth_sum += cycle.weight * cycle.depth
        soc_sum += cycle.weight * cycle.mean_soc
    if total_weight == 0.0:
        return 0.0, 0.0, 0.0
    return total_weight, depth_sum / total_weight, soc_sum / total_weight
