"""Rainflow cycle counting (ASTM E1049-85, three-point method).

The degradation model needs, from a battery's SoC trace, the set of
charge-discharge cycles: for each cycle its *cycle discharge* ``δ`` (the
SoC range, i.e. max − min within the cycle), its *average SoC* ``φ`` (the
cycle mean), and its *cycle type* ``η`` (1.0 for a full cycle, 0.5 for a
half cycle from the residue).  The paper computes exactly these with "the
rainflow-counting algorithm [13]".

The implementation follows the classic three-point ASTM procedure:
turning points are extracted first, then ranges are paired; ranges that
involve the first point of the history are counted as half cycles, the
residue at the end likewise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class Cycle:
    """One counted charge-discharge cycle.

    Attributes
    ----------
    depth:
        The cycle discharge ``δ`` — SoC range swept by the cycle.
    mean_soc:
        The cycle's average SoC ``φ`` (midpoint of the excursion).
    weight:
        The cycle type ``η`` — 1.0 for full cycles, 0.5 for half cycles.
    """

    depth: float
    mean_soc: float
    weight: float

    def __post_init__(self) -> None:
        if self.depth < 0:
            raise ConfigurationError("cycle depth cannot be negative")
        if self.weight not in (0.5, 1.0):
            raise ConfigurationError("cycle weight must be 0.5 or 1.0")


def extract_reversals(series: Sequence[float]) -> List[float]:
    """Reduce a series to its turning points (local extrema).

    The first and last samples are always kept.  Consecutive duplicate
    values are merged; interior points where the slope keeps its sign are
    dropped.  A series with fewer than two distinct values has no
    reversals and returns at most one point.
    """
    points: List[float] = []
    for value in series:
        value = float(value)
        if points and value == points[-1]:
            continue
        if len(points) >= 2:
            rising_before = points[-1] > points[-2]
            rising_now = value > points[-1]
            if rising_before == rising_now:
                points[-1] = value
                continue
        points.append(value)
    return points


def count_cycles(series: Sequence[float]) -> List[Cycle]:
    """Count rainflow cycles in a (SoC) series.

    Returns the list of :class:`Cycle` objects, full cycles first as they
    are closed, then the residue as half cycles.  An empty or monotone
    series yields, respectively, no cycles or a single half cycle.
    """
    reversals = extract_reversals(series)
    cycles: List[Cycle] = []
    stack: List[float] = []

    for point in reversals:
        stack.append(point)
        while len(stack) >= 3:
            x = abs(stack[-1] - stack[-2])
            y = abs(stack[-2] - stack[-3])
            if x < y:
                break
            if len(stack) == 3:
                # Range Y contains the starting point: count as half cycle.
                cycles.append(_make_cycle(stack[0], stack[1], weight=0.5))
                stack.pop(0)
            else:
                cycles.append(_make_cycle(stack[-3], stack[-2], weight=1.0))
                del stack[-3:-1]

    # Residue: remaining ranges are half cycles.
    for a, b in zip(stack, stack[1:]):
        cycles.append(_make_cycle(a, b, weight=0.5))
    return cycles


def _make_cycle(a: float, b: float, weight: float) -> Cycle:
    return Cycle(depth=abs(a - b), mean_soc=(a + b) / 2.0, weight=weight)


def cycle_statistics(cycles: Iterable[Cycle]) -> Tuple[float, float, float]:
    """Aggregate (equivalent_full_cycles, mean_depth, mean_soc) of cycles.

    ``equivalent_full_cycles`` is the weight-sum (a half cycle counts
    0.5); the means are weight-averaged.  All three are 0 for no cycles.
    """
    total_weight = 0.0
    depth_sum = 0.0
    soc_sum = 0.0
    for cycle in cycles:
        total_weight += cycle.weight
        depth_sum += cycle.weight * cycle.depth
        soc_sum += cycle.weight * cycle.mean_soc
    if total_weight == 0.0:
        return 0.0, 0.0, 0.0
    return total_weight, depth_sum / total_weight, soc_sum / total_weight
