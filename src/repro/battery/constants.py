"""Battery degradation model constants (Eq. 1-4).

The paper uses the lithium-ion degradation model of Xu et al., "Modeling
of Lithium-Ion Battery Degradation for Cell Life Assessment", IEEE
Transactions on Smart Grid, 2016 [13].  The constants below follow that
model's published LMO-cell fit, mapped onto the paper's notation:

* Eq. (1) — calendar aging: ``k1`` is the time-stress coefficient (per
  second), ``k2``/``k3`` the SoC-stress exponent and reference SoC, and
  ``k4``/``k5`` the temperature-stress exponent and reference temperature
  in Celsius.
* Eq. (2) — cycle aging: ``k6`` is the paper's linearized per-cycle
  coefficient multiplying ``η·δ·φ``.  Xu's full model uses a nonlinear
  DoD stress; the paper's evaluation linearizes it, and ``k6`` here is
  calibrated so cycle aging stays a small fraction of calendar aging
  under the paper's workloads (Fig. 2's observation).
* Eq. (4) — SEI nonlinearity: ``alpha_sei`` and ``k_sei``.

With these values a battery held at mean SoC ≈ 0.9 at 25 °C reaches the
20 % end-of-life threshold in ≈ 8 years and one held at ≈ 0.45 in ≈ 13–14
years, bracketing the paper's Fig. 8 lifespans.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class DegradationConstants:
    """The full set of battery-specific constants used by Eq. (1)-(4)."""

    #: ``k1``: calendar time-stress coefficient, per second of age.
    k1: float = 4.14e-10
    #: ``k2``: SoC stress exponent (dimensionless).
    k2: float = 1.04
    #: ``k3``: reference SoC around which SoC stress is centred.
    k3: float = 0.5
    #: ``k4``: temperature stress exponent (per Kelvin-ish unit).
    k4: float = 6.93e-2
    #: ``k5``: reference temperature in degrees Celsius.
    k5: float = 25.0
    #: ``k6``: linearized per-cycle aging coefficient (paper's Eq. 2 form).
    k6: float = 2.6e-5
    #: Cycle-stress form: ``"xu"`` uses Xu et al.'s full nonlinear
    #: depth-of-discharge stress (what the paper's implementation uses —
    #: "the model proposed in [13] is used"); ``"linear"`` uses the
    #: simplified presentation of Eq. (2), ``k6·η·δ·φ``.
    cycle_stress_model: str = "xu"
    #: Xu et al. DoD-stress coefficients: ``S_δ(δ) = 1/(kd1·δ^kd2 + kd3)``.
    kd1: float = 1.40e5
    kd2: float = -5.01e-1
    kd3: float = -1.23e5
    #: ``alpha_sei``: fraction of capacity associated with SEI formation.
    alpha_sei: float = 5.75e-2
    #: ``k_sei``: SEI acceleration factor (the ``k`` of Eq. 4).
    k_sei: float = 121.0
    #: End-of-life threshold: a battery is dead at 20 % degradation.
    eol_threshold: float = 0.20

    def __post_init__(self) -> None:
        if self.k1 <= 0 or self.k6 < 0:
            raise ConfigurationError("stress coefficients must be positive")
        if self.cycle_stress_model not in ("xu", "linear"):
            raise ConfigurationError(
                "cycle_stress_model must be 'xu' or 'linear'"
            )
        if not 0.0 < self.alpha_sei < 1.0:
            raise ConfigurationError("alpha_sei must be in (0, 1)")
        if self.k_sei <= 0:
            raise ConfigurationError("k_sei must be positive")
        if not 0.0 < self.eol_threshold < 1.0:
            raise ConfigurationError("eol_threshold must be in (0, 1)")


#: Default constants used across the library and the reproduction benches.
DEFAULT_CONSTANTS = DegradationConstants()
