"""Incremental Eq. (1)-(4) degradation: O(new points) per refresh.

The batch pipeline (:meth:`~repro.battery.degradation.DegradationModel.
breakdown_from_trace`) re-runs rainflow counting over the *entire* SoC
history at every refresh, which makes multi-year simulations quadratic
in simulated days.  :class:`IncrementalDegradation` keeps the rainflow
state machine alive between refreshes instead: closed cycles are folded
into running aggregates (``Σ η``, ``Σ η·δ``, ``Σ η·φ`` and the Eq. (2)
damage sum) the moment they close, and a refresh only has to walk the
open residue stack.

Bit-identity contract
---------------------
Every accumulation here mirrors the batch code's *operation order*
exactly — same left-to-right multiplication chains, same
closed-then-residue summation order, same ``0.0`` starting values — so
the resulting :class:`DegradationBreakdown` is equal to the batch
recomputation down to the last float bit, not merely approximately.
``tests/sim/test_incremental_equality.py`` enforces this across both
engines and the fault-sweep scenario.

Memoization
-----------
The Arrhenius temperature stress is computed once per (temperature,
constants) pair, and the per-cycle depth / mean-SoC stress factors are
cached by their exact float keys: protocol-driven SoC traces revisit
the same cap and rest levels constantly, so repeated (δ, φ) pairs are
the common case.  Cached values are bit-identical to recomputation
(pure functions of their inputs), so memoization cannot perturb
results.

The accumulator assumes a fixed battery temperature (the paper's
insulated 25 °C battery): Eq. (2) terms are summed with the temperature
stress already multiplied in, so a temperature that changed mid-stream
would need a batch recomputation instead.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Optional

from ..exceptions import ConfigurationError
from .constants import DEFAULT_CONSTANTS, DegradationConstants
from .degradation import (
    DegradationBreakdown,
    calendar_aging,
    depth_of_discharge_stress,
    soc_stress,
    temperature_stress,
)
from .rainflow import Cycle, StreamingRainflow


@lru_cache(maxsize=128)
def cached_temperature_stress(
    temperature_c: float, constants: DegradationConstants = DEFAULT_CONSTANTS
) -> float:
    """Memoized Arrhenius temperature stress shared by Eq. (1) and (2).

    Pure function of its inputs, so the cached value is bit-identical to
    :func:`~repro.battery.degradation.temperature_stress`.
    """
    return temperature_stress(temperature_c, constants)


class IncrementalDegradation:
    """Streaming replacement for ``breakdown_from_soc_series``.

    Feed every SoC sample through :meth:`push`; ask for the current
    :class:`DegradationBreakdown` with :meth:`breakdown`.  The cost of a
    refresh is O(open residue stack), independent of trace length.
    """

    __slots__ = (
        "_constants",
        "_temperature_c",
        "_stress_t",
        "_linear_model",
        "_k6",
        "_stream",
        "_closed_count",
        "_weight_sum",
        "_depth_sum",
        "_soc_sum",
        "_aging_sum",
        "_depth_stress_memo",
        "_soc_stress_memo",
        "_memo_limit",
    )

    #: Stress memo dictionaries are cleared past this size so decade-long
    #: traces with non-repeating depths cannot grow memory unboundedly.
    MEMO_LIMIT = 65_536

    def __init__(
        self,
        temperature_c: float,
        constants: DegradationConstants = DEFAULT_CONSTANTS,
        memo_limit: Optional[int] = None,
    ) -> None:
        # Per-instance cap so large topologies (memory_profile="diet")
        # can shrink the caches: memoization is a pure-function cache,
        # so any cap — including 0 — leaves results bit-identical.
        self._memo_limit = self.MEMO_LIMIT if memo_limit is None else memo_limit
        self._constants = constants
        self._temperature_c = temperature_c
        self._stress_t = cached_temperature_stress(temperature_c, constants)
        self._linear_model = constants.cycle_stress_model == "linear"
        self._k6 = constants.k6
        self._stream = StreamingRainflow(on_cycle=self._on_cycle)
        self._closed_count = 0
        # Same 0.0 starting values the batch aggregations use.
        self._weight_sum = 0.0
        self._depth_sum = 0.0
        self._soc_sum = 0.0
        self._aging_sum = 0.0
        self._depth_stress_memo: Dict[float, float] = {}
        self._soc_stress_memo: Dict[float, float] = {}

    @property
    def temperature_c(self) -> float:
        """Battery temperature the Eq. (2) terms were accumulated at."""
        return self._temperature_c

    @property
    def closed_cycle_count(self) -> int:
        """Cycles folded into the aggregates so far (diagnostic)."""
        return self._closed_count

    def push(self, soc: float) -> None:
        """Consume the next SoC sample of the battery's history."""
        self._stream.push(soc)

    def push_batch(self, socs) -> None:
        """Consume an array of SoC samples (see ``StreamingRainflow.extend_batch``)."""
        self._stream.extend_batch(socs)

    # ------------------------------------------------------------- internals

    def _depth_stress(self, depth: float) -> float:
        cached = self._depth_stress_memo.get(depth)
        if cached is None:
            cached = depth_of_discharge_stress(depth, self._constants)
            if len(self._depth_stress_memo) >= self._memo_limit:
                self._depth_stress_memo.clear()
            self._depth_stress_memo[depth] = cached
        return cached

    def _soc_stress(self, mean_soc: float) -> float:
        cached = self._soc_stress_memo.get(mean_soc)
        if cached is None:
            cached = soc_stress(mean_soc, self._constants)
            if len(self._soc_stress_memo) >= self._memo_limit:
                self._soc_stress_memo.clear()
            self._soc_stress_memo[mean_soc] = cached
        return cached

    def _aging_term(self, cycle: Cycle) -> float:
        # Multiplication chains mirror cycle_aging() exactly: the batch
        # code multiplies the temperature stress into every term, so the
        # accumulator must too (factoring it out would change the bits).
        if self._linear_model:
            return (
                cycle.weight * cycle.depth * cycle.mean_soc * self._k6 * self._stress_t
            )
        return (
            cycle.weight
            * self._depth_stress(cycle.depth)
            * self._soc_stress(cycle.mean_soc)
            * self._stress_t
        )

    def _on_cycle(self, cycle: Cycle) -> None:
        self._closed_count += 1
        self._weight_sum += cycle.weight
        self._depth_sum += cycle.weight * cycle.depth
        self._soc_sum += cycle.weight * cycle.mean_soc
        self._aging_sum += self._aging_term(cycle)

    # ----------------------------------------------------------------- query

    def breakdown(
        self,
        age_s: float,
        temperature_c: Optional[float] = None,
        fallback_mean_soc: Optional[float] = None,
    ) -> DegradationBreakdown:
        """Current degradation breakdown, bit-identical to the batch path.

        ``temperature_c`` defaults to (and must equal) the construction
        temperature: Eq. (2) terms already carry its stress factor.
        """
        if temperature_c is not None and temperature_c != self._temperature_c:
            raise ConfigurationError(
                "incremental degradation accumulated at "
                f"{self._temperature_c} °C cannot be queried at "
                f"{temperature_c} °C; recompute from the trace instead"
            )
        pending = self._stream.pending_cycles()
        total_weight = self._weight_sum
        depth_sum = self._depth_sum
        soc_sum = self._soc_sum
        aging = self._aging_sum
        for cycle in pending:
            total_weight += cycle.weight
            depth_sum += cycle.weight * cycle.depth
            soc_sum += cycle.weight * cycle.mean_soc
            aging += self._aging_term(cycle)
        if total_weight == 0.0:
            efc, mean_depth, mean_soc = 0.0, 0.0, 0.0
        else:
            efc = total_weight
            mean_depth = depth_sum / total_weight
            mean_soc = soc_sum / total_weight
        if self._closed_count == 0 and not pending:
            if fallback_mean_soc is None:
                raise ConfigurationError("cannot degrade an empty SoC history")
            mean_soc = fallback_mean_soc
        calendar = calendar_aging(
            age_s, self._temperature_c, mean_soc, self._constants
        )
        return DegradationBreakdown(
            calendar=calendar,
            cycle=aging,
            equivalent_full_cycles=efc,
            mean_cycle_depth=mean_depth,
            mean_soc=mean_soc,
        )
