"""Rechargeable-battery state machine.

Tracks stored energy, state of charge, the compressed SoC trace feeding
the degradation model, and the shrinking maximum capacity.  Terminology
follows Section II-C of the paper:

* *original maximum capacity*: energy a new battery can store;
* *degradation*: ``1 − current_max / original_max`` (Eq. 4 output);
* *SoC*: ratio of currently stored energy to the **original** maximum
  capacity (the paper's Section II-B definition);
* *EoL*: degradation ≥ 20 %, after which capacity fade accelerates and
  the battery is flagged for replacement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..exceptions import (
    BatteryDepletedError,
    BatteryEndOfLifeError,
    ConfigurationError,
)
from .constants import DEFAULT_CONSTANTS, DegradationConstants
from .degradation import DegradationBreakdown, DegradationModel
from .incremental import IncrementalDegradation
from .soc_trace import SocTrace


@dataclass
class Battery:
    """A rechargeable battery with degradation-aware capacity accounting.

    Parameters
    ----------
    capacity_j:
        Original maximum capacity in joules.  The paper sizes it to
        sustain 24 hours of node operation without recharging.
    initial_soc:
        Starting state of charge in [0, 1].
    temperature_c:
        Internal temperature; the paper assumes an insulated battery at a
        fixed 25 °C.
    initial_age_s:
        ζ offset for batteries that were not new at deployment.
    incremental:
        When True (default) degradation refreshes use the streaming
        rainflow accumulator — O(new samples) per refresh instead of
        re-counting the whole trace, bit-identical to the batch path.
    """

    capacity_j: float
    initial_soc: float = 0.5
    temperature_c: float = 25.0
    initial_age_s: float = 0.0
    constants: DegradationConstants = DEFAULT_CONSTANTS
    incremental: bool = True
    #: Optional cap on the incremental accumulator's stress-memo dicts
    #: (None keeps the class default).  Pure-function caches, so any cap
    #: is bit-identical; ``memory_profile="diet"`` shrinks it.
    memo_limit: Optional[int] = None

    stored_j: float = field(init=False)
    trace: SocTrace = field(init=False)
    _degradation: float = field(init=False, default=0.0)
    _model: DegradationModel = field(init=False)
    _now_s: float = field(init=False, default=0.0)
    _last_breakdown: Optional[DegradationBreakdown] = field(init=False, default=None)

    def __post_init__(self) -> None:
        if self.capacity_j <= 0:
            raise ConfigurationError("battery capacity must be positive")
        if not 0.0 <= self.initial_soc <= 1.0:
            raise ConfigurationError("initial SoC must be in [0, 1]")
        if self.initial_age_s < 0:
            raise ConfigurationError("initial age cannot be negative")
        self.stored_j = self.initial_soc * self.capacity_j
        self.trace = SocTrace()
        self.trace.append(0.0, self.initial_soc)
        self._model = DegradationModel(self.constants)
        # Streaming degradation accumulator (plain attribute like the
        # trace hooks below: never compared or serialized).  Fed the same
        # clamped SoC values SocTrace stores, so its rainflow state always
        # mirrors the trace's turning points.
        self._incremental: Optional[IncrementalDegradation] = (
            IncrementalDegradation(
                self.temperature_c, self.constants, memo_limit=self.memo_limit
            )
            if self.incremental
            else None
        )
        if self._incremental is not None:
            self._incremental.push(self.initial_soc)
        # Observability hook (not a dataclass field: never compared or
        # serialized); None keeps degradation refreshes trace-free.
        self._trace_bus = None
        self._trace_node: Optional[int] = None

    def bind_trace(self, bus, node_id: Optional[int] = None) -> None:
        """Attach a trace bus so degradation refreshes publish events."""
        self._trace_bus = bus
        self._trace_node = node_id

    # ------------------------------------------------------------------ state

    @property
    def soc(self) -> float:
        """State of charge relative to the original maximum capacity."""
        return self.stored_j / self.capacity_j

    @property
    def degradation(self) -> float:
        """Most recently computed nonlinear degradation ``D`` (Eq. 4)."""
        return self._degradation

    @property
    def current_max_capacity_j(self) -> float:
        """Capacity still usable: ``(1 − D) × original`` (ψ_max of Eq. 12)."""
        return (1.0 - self._degradation) * self.capacity_j

    @property
    def is_end_of_life(self) -> bool:
        """Whether degradation crossed the EoL threshold (default 20 %)."""
        return self._model.is_end_of_life(self._degradation)

    @property
    def age_s(self) -> float:
        """ζ: seconds since manufacturing (initial age + simulated time)."""
        return self.initial_age_s + self._now_s

    @property
    def now_s(self) -> float:
        """Simulation time of the last battery operation."""
        return self._now_s

    @property
    def last_breakdown(self) -> Optional[DegradationBreakdown]:
        """Calendar/cycle decomposition from the last degradation refresh."""
        return self._last_breakdown

    # ------------------------------------------------------------ energy flow

    def charge(self, energy_j: float, now_s: float, soc_cap: float = 1.0) -> float:
        """Add up to ``energy_j`` joules; returns the energy accepted.

        Charging is clipped both by the battery's *current* maximum
        capacity (a degraded battery stores less, Eq. 12's ψ_max) and by
        the caller-supplied ``soc_cap`` — the protocol's θ threshold that
        limits calendar aging (Section III-B, Eq. 21).
        """
        if energy_j < 0:
            raise ConfigurationError("charge energy cannot be negative")
        if not 0.0 <= soc_cap <= 1.0:
            raise ConfigurationError("soc_cap must be in [0, 1]")
        limit_j = min(self.current_max_capacity_j, soc_cap * self.capacity_j)
        accepted = max(0.0, min(energy_j, limit_j - self.stored_j))
        self.stored_j += accepted
        self._advance(now_s)
        return accepted

    def discharge(self, energy_j: float, now_s: float) -> None:
        """Draw ``energy_j`` joules; raises if the battery cannot supply it."""
        if energy_j < 0:
            raise ConfigurationError("discharge energy cannot be negative")
        if energy_j > self.stored_j + 1e-12:
            raise BatteryDepletedError(
                f"requested {energy_j:.4g} J but only {self.stored_j:.4g} J stored"
            )
        self.stored_j = max(0.0, self.stored_j - energy_j)
        self._advance(now_s)

    def try_discharge(self, energy_j: float, now_s: float) -> bool:
        """Like :meth:`discharge` but returns False instead of raising."""
        try:
            self.discharge(energy_j, now_s)
        except BatteryDepletedError:
            return False
        return True

    def can_supply(self, energy_j: float) -> bool:
        """Whether the battery currently stores at least ``energy_j``."""
        return self.stored_j + 1e-12 >= energy_j

    def settle(self, now_s: float) -> None:
        """Advance time with no energy flow (records trace duration)."""
        self._advance(now_s)

    def _advance(self, now_s: float) -> None:
        if now_s < self._now_s:
            raise ConfigurationError("battery time cannot move backwards")
        self._now_s = now_s
        soc = self.soc
        self.trace.append(now_s, soc)
        if self._incremental is not None:
            # Same clamp SocTrace.append applies before storing.
            self._incremental.push(min(soc, 1.0))

    # ---------------------------------------------------------- degradation

    def refresh_degradation(self, raise_on_eol: bool = False) -> float:
        """Recompute Eq. (4) degradation from the accumulated trace.

        In the real system this runs at the gateway from piggybacked
        transition reports; the simulator calls it periodically (e.g.
        monthly).  Returns the new degradation and optionally raises
        :class:`BatteryEndOfLifeError` past the threshold.
        """
        if self._incremental is not None:
            breakdown = self._incremental.breakdown(
                age_s=self.age_s,
                fallback_mean_soc=self.trace.time_weighted_mean_soc(),
            )
        else:
            breakdown = self._model.breakdown_from_trace(
                self.trace, age_s=self.age_s, temperature_c=self.temperature_c
            )
        self._last_breakdown = breakdown
        self._degradation = breakdown.nonlinear(self.constants)
        # A degraded battery may now hold more energy than it can store.
        self.stored_j = min(self.stored_j, self.current_max_capacity_j)
        if self._trace_bus is not None:
            self._trace_bus.emit(
                self._now_s,
                "battery",
                "battery.degradation",
                severity="debug",
                node_id=self._trace_node,
                degradation=self._degradation,
                cycle=breakdown.cycle,
                calendar=breakdown.calendar,
                soc=self.soc,
            )
        if raise_on_eol and self.is_end_of_life:
            raise BatteryEndOfLifeError(
                f"battery reached {self._degradation:.1%} degradation"
            )
        return self._degradation
