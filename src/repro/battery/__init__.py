"""Battery substrate: rainflow counting, the Xu et al. [13] degradation
model (Eq. 1-4), compressed SoC traces, and the battery state machine.
"""

from .battery import Battery
from .constants import DEFAULT_CONSTANTS, DegradationConstants
from .degradation import (
    depth_of_discharge_stress,
    DegradationBreakdown,
    DegradationModel,
    calendar_aging,
    cycle_aging,
    invert_nonlinear_degradation,
    linear_degradation,
    nonlinear_degradation,
    soc_stress,
    temperature_stress,
)
from .incremental import IncrementalDegradation, cached_temperature_stress
from .rainflow import (
    Cycle,
    StreamingRainflow,
    count_cycles,
    cycle_statistics,
    extract_reversals,
)
from .soc_trace import SocTrace, TransitionReport, reconstruct_trace
from .thermal import AmbientTemperature, BatteryThermalModel

__all__ = [
    "AmbientTemperature",
    "Battery",
    "BatteryThermalModel",
    "Cycle",
    "DEFAULT_CONSTANTS",
    "DegradationBreakdown",
    "DegradationConstants",
    "DegradationModel",
    "IncrementalDegradation",
    "SocTrace",
    "StreamingRainflow",
    "TransitionReport",
    "cached_temperature_stress",
    "calendar_aging",
    "count_cycles",
    "cycle_aging",
    "cycle_statistics",
    "depth_of_discharge_stress",
    "extract_reversals",
    "invert_nonlinear_degradation",
    "linear_degradation",
    "nonlinear_degradation",
    "reconstruct_trace",
    "soc_stress",
    "temperature_stress",
]
