"""Ambient and battery temperature models.

The paper assumes insulated batteries at a fixed 25 °C, but its
degradation model (Eq. 1-2) is strongly temperature-dependent through
the Arrhenius factor, and real outdoor LPWAN deployments are not
isothermal.  This module provides a diurnal + seasonal ambient model
and a first-order thermal coupling so the temperature-sensitivity
ablation can quantify how much a few degrees of mean temperature move
battery lifespan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..constants import SECONDS_PER_DAY, SECONDS_PER_YEAR
from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class AmbientTemperature:
    """Sinusoidal diurnal + seasonal ambient temperature (°C).

    ``T(t) = mean + seasonal·cos(2π(t−peak_day)/year)
             + diurnal·sin(2π(hour−peak_hour+6)/24)``

    Defaults model a temperate site: 15 °C annual mean, ±10 °C seasonal
    swing peaking mid-year, ±6 °C diurnal swing peaking mid-afternoon.
    """

    mean_c: float = 15.0
    seasonal_amplitude_c: float = 10.0
    diurnal_amplitude_c: float = 6.0
    #: Day of year (0-based) with the warmest season.
    peak_day: float = 196.0
    #: Local hour of the warmest time of day.
    peak_hour: float = 15.0

    def __post_init__(self) -> None:
        if self.seasonal_amplitude_c < 0 or self.diurnal_amplitude_c < 0:
            raise ConfigurationError("amplitudes cannot be negative")

    def at(self, time_s: float) -> float:
        """Ambient temperature at absolute ``time_s`` (t = 0 is Jan 1, 00:00)."""
        day_of_year = (time_s % SECONDS_PER_YEAR) / SECONDS_PER_DAY
        seasonal = self.seasonal_amplitude_c * math.cos(
            2.0 * math.pi * (day_of_year - self.peak_day) / 365.0
        )
        hour = (time_s % SECONDS_PER_DAY) / 3600.0
        diurnal = self.diurnal_amplitude_c * math.cos(
            2.0 * math.pi * (hour - self.peak_hour) / 24.0
        )
        return self.mean_c + seasonal + diurnal

    def mean_over(self, start_s: float, duration_s: float, samples: int = 96) -> float:
        """Average ambient temperature across an interval."""
        if duration_s <= 0 or samples < 1:
            raise ConfigurationError("duration and samples must be positive")
        step = duration_s / samples
        return sum(
            self.at(start_s + (i + 0.5) * step) for i in range(samples)
        ) / samples


@dataclass
class BatteryThermalModel:
    """First-order battery-internal temperature tracking ambient.

    The cell's thermal mass low-passes ambient with time constant τ; an
    insulation factor pulls the steady state toward a conditioned
    reference (the paper's insulated enclosure is ``insulation = 1``,
    i.e. pinned at the reference).
    """

    ambient: AmbientTemperature
    time_constant_s: float = 4.0 * 3600.0
    #: 0 = tracks ambient fully, 1 = perfectly insulated at reference_c.
    insulation: float = 0.0
    reference_c: float = 25.0

    _temperature_c: float = None  # type: ignore[assignment]
    _last_time_s: float = 0.0

    def __post_init__(self) -> None:
        if self.time_constant_s <= 0:
            raise ConfigurationError("time constant must be positive")
        if not 0.0 <= self.insulation <= 1.0:
            raise ConfigurationError("insulation must be in [0, 1]")
        if self._temperature_c is None:
            self._temperature_c = self._target(0.0)

    def _target(self, time_s: float) -> float:
        return (
            self.insulation * self.reference_c
            + (1.0 - self.insulation) * self.ambient.at(time_s)
        )

    @property
    def temperature_c(self) -> float:
        """Current internal battery temperature."""
        return self._temperature_c

    def advance_to(self, time_s: float) -> float:
        """Step the first-order response to ``time_s``; returns the new T."""
        if time_s < self._last_time_s:
            raise ConfigurationError("thermal time cannot move backwards")
        dt = time_s - self._last_time_s
        self._last_time_s = time_s
        if dt > 0:
            alpha = 1.0 - math.exp(-dt / self.time_constant_s)
            self._temperature_c += alpha * (
                self._target(time_s) - self._temperature_c
            )
        return self._temperature_c
