"""Battery degradation model: Eq. (1)-(4) of the paper.

Implements the calendar-aging, cycle-aging, combined-linear and nonlinear
(SEI) degradation equations from Xu et al. [13] exactly as the paper
states them:

* Eq. (1): ``D_cal(ζ, T̄, φ̄) = k1 · ζ · e^{k2(φ̄−k3)} ·
  e^{k4(T̄−k5)(273+k5)/(273+T̄)}``
* Eq. (2): ``D_cyc = Σ_i η_i · δ_i · φ_i · k6 ·
  e^{k4(T̄−k5)(273+k5)/(273+T̄)}``
* Eq. (3): ``D_L = D_cal + D_cyc``
* Eq. (4): ``D = 1 − α_sei e^{−k·D_L} − (1−α_sei) e^{−D_L}``

plus helpers to evaluate them from a :class:`~repro.battery.soc_trace.SocTrace`
(via rainflow counting) and to invert Eq. (4), which the lifespan benches
use to extrapolate when a battery will cross end of life.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..constants import CELSIUS_TO_KELVIN_OFFSET
from ..exceptions import ConfigurationError
from .constants import DEFAULT_CONSTANTS, DegradationConstants
from .rainflow import Cycle, count_cycles, cycle_statistics
from .soc_trace import SocTrace


def temperature_stress(
    temperature_c: float, constants: DegradationConstants = DEFAULT_CONSTANTS
) -> float:
    """The Arrhenius-style temperature factor shared by Eq. (1) and (2).

    ``e^{k4 (T̄ − k5)(273 + k5) / (273 + T̄)}`` — equals 1 at the
    reference temperature ``k5`` and grows exponentially above it.
    """
    kelvin = CELSIUS_TO_KELVIN_OFFSET + temperature_c
    if kelvin <= 0:
        raise ConfigurationError("temperature below absolute zero")
    exponent = (
        constants.k4
        * (temperature_c - constants.k5)
        * (CELSIUS_TO_KELVIN_OFFSET + constants.k5)
        / kelvin
    )
    return math.exp(exponent)


def soc_stress(
    mean_soc: float, constants: DegradationConstants = DEFAULT_CONSTANTS
) -> float:
    """SoC stress factor ``e^{k2(φ̄ − k3)}`` of Eq. (1)."""
    if not 0.0 <= mean_soc <= 1.0:
        raise ConfigurationError(f"mean SoC {mean_soc} outside [0, 1]")
    return math.exp(constants.k2 * (mean_soc - constants.k3))


def calendar_aging(
    age_s: float,
    temperature_c: float,
    mean_soc: float,
    constants: DegradationConstants = DEFAULT_CONSTANTS,
) -> float:
    """Calendar-aging component ``D_cal`` (Eq. 1).

    ``age_s`` is ζ, the time elapsed since battery manufacturing, in
    seconds; ``mean_soc`` is φ̄, the average SoC across cycles.
    """
    if age_s < 0:
        raise ConfigurationError("battery age cannot be negative")
    return (
        constants.k1
        * age_s
        * soc_stress(mean_soc, constants)
        * temperature_stress(temperature_c, constants)
    )


def depth_of_discharge_stress(
    depth: float, constants: DegradationConstants = DEFAULT_CONSTANTS
) -> float:
    """Xu et al.'s nonlinear DoD stress ``S_δ(δ) = 1/(kd1·δ^kd2 + kd3)``.

    Superlinear in depth: a 100 %-DoD cycle damages far more than ten
    10 %-DoD cycles.  Returns 0 for a zero-depth cycle (no stress).
    """
    if depth < 0:
        raise ConfigurationError("cycle depth cannot be negative")
    if depth == 0.0:
        return 0.0
    denominator = constants.kd1 * depth**constants.kd2 + constants.kd3
    if denominator <= 0:
        raise ConfigurationError(f"DoD stress undefined for depth {depth}")
    return 1.0 / denominator


def cycle_aging(
    cycles: Iterable[Cycle],
    temperature_c: float,
    constants: DegradationConstants = DEFAULT_CONSTANTS,
) -> float:
    """Cycle-aging component ``D_cyc`` (Eq. 2) from counted cycles.

    Two forms are supported via ``constants.cycle_stress_model``:

    * ``"xu"`` (default): Xu et al.'s full per-cycle damage
      ``η · S_δ(δ) · S_σ(φ) · S_T(T)`` — the model the paper's
      implementation uses.
    * ``"linear"``: the paper's simplified presentation,
      ``η · δ · φ · k6 · S_T(T)``.
    """
    stress_t = temperature_stress(temperature_c, constants)
    if constants.cycle_stress_model == "linear":
        return sum(
            cycle.weight * cycle.depth * cycle.mean_soc * constants.k6 * stress_t
            for cycle in cycles
        )
    return sum(
        cycle.weight
        * depth_of_discharge_stress(cycle.depth, constants)
        * soc_stress(cycle.mean_soc, constants)
        * stress_t
        for cycle in cycles
    )


def linear_degradation(calendar: float, cycle: float) -> float:
    """Combined linear degradation ``D_L = D_cal + D_cyc`` (Eq. 3)."""
    if calendar < 0 or cycle < 0:
        raise ConfigurationError("degradation components cannot be negative")
    return calendar + cycle


def nonlinear_degradation(
    linear: float, constants: DegradationConstants = DEFAULT_CONSTANTS
) -> float:
    """Nonlinear (SEI-corrected) degradation ``D`` (Eq. 4).

    Monotone in ``D_L``, starts at 0 for a fresh battery, and saturates
    at 1.  The SEI term makes early degradation fast (film formation)
    before settling onto the slower exponential.
    """
    if linear < 0:
        raise ConfigurationError("linear degradation cannot be negative")
    a = constants.alpha_sei
    return 1.0 - a * math.exp(-constants.k_sei * linear) - (1.0 - a) * math.exp(-linear)


def invert_nonlinear_degradation(
    target: float,
    constants: DegradationConstants = DEFAULT_CONSTANTS,
    tolerance: float = 1e-12,
) -> float:
    """The ``D_L`` at which Eq. (4) reaches ``target`` (bisection inverse).

    Used to answer "how much linear degradation budget remains before
    end of life" when extrapolating lifespans.
    """
    if not 0.0 <= target < 1.0:
        raise ConfigurationError("target degradation must be in [0, 1)")
    if target == 0.0:
        return 0.0
    low, high = 0.0, 1.0
    while nonlinear_degradation(high, constants) < target:
        high *= 2.0
        if high > 1e6:
            raise ConfigurationError("target degradation unreachable")
    while high - low > tolerance:
        mid = (low + high) / 2.0
        if nonlinear_degradation(mid, constants) < target:
            low = mid
        else:
            high = mid
    return (low + high) / 2.0


@dataclass(frozen=True)
class DegradationBreakdown:
    """The decomposed degradation of one battery at one instant."""

    calendar: float
    cycle: float
    equivalent_full_cycles: float
    mean_cycle_depth: float
    mean_soc: float

    @property
    def linear(self) -> float:
        """``D_L`` of Eq. (3)."""
        return self.calendar + self.cycle

    def nonlinear(
        self, constants: DegradationConstants = DEFAULT_CONSTANTS
    ) -> float:
        """``D`` of Eq. (4)."""
        return nonlinear_degradation(self.linear, constants)


class DegradationModel:
    """Evaluates the full Eq. (1)-(4) pipeline from SoC histories.

    This is the gateway-side computation of Section III-B ("Computing
    Battery Degradation"): given a node's SoC trace, run rainflow, derive
    ``N_u``, ``δ_u``, ``φ_u``, ``η_u``, and combine with the battery age
    and temperature into the final nonlinear degradation.
    """

    def __init__(
        self, constants: DegradationConstants = DEFAULT_CONSTANTS
    ) -> None:
        self._constants = constants

    @property
    def constants(self) -> DegradationConstants:
        """The battery-specific constant set in use."""
        return self._constants

    def breakdown_from_soc_series(
        self,
        soc_series: Sequence[float],
        age_s: float,
        temperature_c: float = 25.0,
        fallback_mean_soc: Optional[float] = None,
    ) -> DegradationBreakdown:
        """Degradation breakdown from a raw SoC series.

        ``φ̄`` for the calendar term is the weighted mean of the counted
        cycles' average SoCs, per the paper's definition; if the series
        contains no cycles (e.g. a battery that was never touched),
        ``fallback_mean_soc`` (or the series mean) is used instead.
        """
        cycles = count_cycles(soc_series)
        _, _, mean_soc = cycle_statistics(cycles)
        efc, mean_depth, _ = cycle_statistics(cycles)
        if not cycles:
            if fallback_mean_soc is not None:
                mean_soc = fallback_mean_soc
            elif len(soc_series):
                mean_soc = sum(soc_series) / len(soc_series)
            else:
                raise ConfigurationError("cannot degrade an empty SoC history")
        calendar = calendar_aging(age_s, temperature_c, mean_soc, self._constants)
        cycle = cycle_aging(cycles, temperature_c, self._constants)
        return DegradationBreakdown(
            calendar=calendar,
            cycle=cycle,
            equivalent_full_cycles=efc,
            mean_cycle_depth=mean_depth,
            mean_soc=mean_soc,
        )

    def breakdown_from_trace(
        self, trace: SocTrace, age_s: Optional[float] = None, temperature_c: float = 25.0
    ) -> DegradationBreakdown:
        """Degradation breakdown from a compressed :class:`SocTrace`."""
        if len(trace) == 0:
            raise ConfigurationError("cannot degrade an empty trace")
        effective_age = trace.duration_s if age_s is None else age_s
        return self.breakdown_from_soc_series(
            trace.turning_points,
            age_s=effective_age,
            temperature_c=temperature_c,
            fallback_mean_soc=trace.time_weighted_mean_soc(),
        )

    def degradation_from_trace(
        self, trace: SocTrace, age_s: Optional[float] = None, temperature_c: float = 25.0
    ) -> float:
        """Final nonlinear degradation ``D`` (Eq. 4) of a traced battery."""
        breakdown = self.breakdown_from_trace(trace, age_s, temperature_c)
        return breakdown.nonlinear(self._constants)

    def is_end_of_life(self, degradation: float) -> bool:
        """Whether ``degradation`` crosses the 20 % EoL threshold."""
        return degradation >= self._constants.eol_threshold

    def eol_linear_budget(self) -> float:
        """The ``D_L`` at which Eq. (4) hits the EoL threshold."""
        return invert_nonlinear_degradation(
            self._constants.eol_threshold, self._constants
        )

    def lifespan_from_linear_rate(self, linear_rate_per_s: float) -> float:
        """Extrapolated lifespan in seconds from a steady ``D_L`` rate.

        Under stationary operation ``D_L`` grows linearly (calendar ∝ ζ,
        cycles accrue at a constant rate), so the EoL crossing time is
        the linear budget divided by the observed rate.  Returns ``inf``
        for a zero rate.
        """
        if linear_rate_per_s < 0:
            raise ConfigurationError("degradation rate cannot be negative")
        if linear_rate_per_s == 0.0:
            return math.inf
        return self.eol_linear_budget() / linear_rate_per_s
