"""repro — reproduction of "A Battery Lifespan-Aware Protocol for LPWAN"
(Fahmida et al., ICDCS 2024).

A complete Python implementation of the paper's battery lifespan-aware
LoRa MAC protocol and every substrate it depends on: a LoRa PHY model,
the Xu et al. battery-degradation model with rainflow counting, an
energy-harvesting subsystem with a software-defined battery switch, and
two network simulators (an exact event-driven engine and a mesoscopic
multi-year runner).

Quick start::

    from repro import SimulationConfig, run_mesoscopic

    base = SimulationConfig(node_count=50, duration_s=7 * 86400)
    lorawan = run_mesoscopic(base.as_lorawan())
    h50 = run_mesoscopic(base.as_h(0.5))
    print(lorawan.metrics.avg_prr, h50.metrics.avg_prr)
"""

from . import battery, core, energy, faults, lora, obs, sim
from .battery import (
    Battery,
    DegradationConstants,
    DegradationModel,
    SocTrace,
    TransitionReport,
)
from .core import (
    BatteryLifespanAwareMac,
    CentralizedScheduler,
    DegradationService,
    LinearUtility,
    LorawanAlohaMac,
    PeriodContext,
    ThresholdOnlyMac,
    WindowSelector,
    degradation_impact_factor,
)
from .faults import (
    BurstLoss,
    FaultCounters,
    FaultInjector,
    FaultPlan,
    GatewayOutage,
    NodeReboot,
)
from .exceptions import (
    BatteryDepletedError,
    BatteryEndOfLifeError,
    BatteryError,
    ConfigurationError,
    InvariantError,
    ProtocolError,
    ReproError,
    SchedulingError,
    SimulationError,
)
from .lora import EnergyModel, SpreadingFactor, TxParams, time_on_air, tx_energy
from .obs import (
    MetricsRegistry,
    Observability,
    RunManifest,
    TraceBus,
    TraceEvent,
)
from .sim import (
    MesoscopicResult,
    SimulationConfig,
    SimulationResult,
    run_mesoscopic,
    run_simulation,
)

__version__ = "1.0.0"

__all__ = [
    "Battery",
    "BatteryDepletedError",
    "BatteryEndOfLifeError",
    "BatteryError",
    "BatteryLifespanAwareMac",
    "BurstLoss",
    "CentralizedScheduler",
    "ConfigurationError",
    "DegradationConstants",
    "DegradationModel",
    "DegradationService",
    "EnergyModel",
    "FaultCounters",
    "FaultInjector",
    "FaultPlan",
    "GatewayOutage",
    "InvariantError",
    "LinearUtility",
    "LorawanAlohaMac",
    "MesoscopicResult",
    "MetricsRegistry",
    "NodeReboot",
    "Observability",
    "PeriodContext",
    "ProtocolError",
    "ReproError",
    "RunManifest",
    "SchedulingError",
    "SimulationConfig",
    "SimulationError",
    "SimulationResult",
    "SocTrace",
    "SpreadingFactor",
    "ThresholdOnlyMac",
    "TraceBus",
    "TraceEvent",
    "TransitionReport",
    "TxParams",
    "WindowSelector",
    "battery",
    "core",
    "degradation_impact_factor",
    "energy",
    "faults",
    "lora",
    "obs",
    "run_mesoscopic",
    "run_simulation",
    "sim",
    "time_on_air",
    "tx_energy",
    "__version__",
]
