"""Runtime fault models backing a :class:`~repro.faults.plan.FaultPlan`.

Each model owns its own deterministic RNG stream derived from the fault
seed so that (a) two runs of the same plan draw identically and (b) the
draws never perturb the simulator's topology/channel/backoff RNGs — a
run with an *empty* plan is bit-identical to a run with no plan at all.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..energy import EnergyForecaster
from ..exceptions import ConfigurationError
from .plan import BurstLoss, GatewayOutage


class AckLossChannel:
    """Per-node downlink loss: independent drops plus optional bursts.

    The burst component is a Gilbert-Elliott chain evaluated once per
    ACK; while in the bad state every ACK is lost.  Each node gets its
    own chain and RNG stream so loss on one link never reorders draws on
    another.
    """

    def __init__(
        self,
        probability: float,
        burst: Optional[BurstLoss],
        seed: int,
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError("loss probability must be in [0, 1]")
        self._probability = probability
        self._burst = burst
        self._seed = seed
        self._rngs: Dict[int, random.Random] = {}
        self._in_burst: Dict[int, bool] = {}

    def _rng(self, node_id: int) -> random.Random:
        rng = self._rngs.get(node_id)
        if rng is None:
            rng = random.Random(self._seed * 2_147_483_629 + node_id)
            self._rngs[node_id] = rng
        return rng

    def lost(self, node_id: int) -> bool:
        """Evaluate one ACK on this node's downlink; True when lost."""
        rng = self._rng(node_id)
        if self._burst is not None:
            in_burst = self._in_burst.get(node_id, False)
            if in_burst:
                if rng.random() < self._burst.exit_probability:
                    self._in_burst[node_id] = False
                else:
                    return True
            elif rng.random() < self._burst.enter_probability:
                self._in_burst[node_id] = True
                return True
        if self._probability <= 0.0:
            return False
        return rng.random() < self._probability

    def in_burst(self, node_id: int) -> bool:
        """Whether the node's downlink is currently in a burst (diagnostic)."""
        return self._in_burst.get(node_id, False)


class OutageSchedule:
    """Indexes a plan's gateway outage windows for O(#windows) queries."""

    def __init__(self, outages: Sequence[GatewayOutage], gateway_count: int) -> None:
        if gateway_count < 1:
            raise ConfigurationError("gateway_count must be >= 1")
        for outage in outages:
            if (
                outage.gateway_index is not None
                and outage.gateway_index >= gateway_count
            ):
                raise ConfigurationError(
                    f"outage names gateway {outage.gateway_index} but only "
                    f"{gateway_count} exist"
                )
        self._outages = tuple(outages)
        self._gateway_count = gateway_count

    def gateway_down(self, gateway_index: int, time_s: float) -> bool:
        """Whether one gateway is down at ``time_s``."""
        return any(
            outage.covers(time_s)
            and outage.gateway_index in (None, gateway_index)
            for outage in self._outages
        )

    def all_down(self, time_s: float) -> bool:
        """Whether every gateway is down at ``time_s`` (no ACK path)."""
        return all(
            self.gateway_down(index, time_s)
            for index in range(self._gateway_count)
        )

    @property
    def outages(self) -> tuple:
        """The schedule's outage windows."""
        return self._outages


class CorruptedForecaster:
    """Wraps an :class:`EnergyForecaster`, corrupting its predictions.

    Models a stale or failing harvest-prediction model: every forecast
    value is scaled by an independent log-normal factor with the plan's
    ``forecast_corruption_sigma``.  Observations pass through untouched
    so the inner forecaster keeps learning from the truth.
    """

    def __init__(
        self,
        inner: EnergyForecaster,
        sigma: float,
        seed: int,
        on_corruption=None,
    ) -> None:
        if sigma < 0:
            raise ConfigurationError("corruption sigma cannot be negative")
        self._inner = inner
        self._sigma = sigma
        self._rng = random.Random(seed)
        self._on_corruption = on_corruption

    def forecast(self, start_s: float, window_s: float, count: int) -> List[float]:
        """The inner forecast with multiplicative log-normal corruption."""
        values = self._inner.forecast(start_s, window_s, count)
        if self._sigma == 0.0:
            return values
        corrupted = [
            value * self._rng.lognormvariate(0.0, self._sigma) for value in values
        ]
        if self._on_corruption is not None:
            self._on_corruption(len(corrupted))
        return corrupted

    def observe(self, start_s: float, window_s: float, energy_j: float) -> None:
        """Pass the realized harvest through to the inner forecaster."""
        self._inner.observe(start_s, window_s, energy_j)

    @property
    def inner(self) -> EnergyForecaster:
        """The wrapped forecaster (diagnostic)."""
        return self._inner
