"""Declarative fault plans.

A :class:`FaultPlan` is plain, frozen data describing *what* can go
wrong in a run: ACK/downlink loss (independent and/or bursty), gateway
outage windows, node brown-out reboots that wipe volatile MAC state,
per-node clock skew on window boundaries, and harvest-forecast
corruption.  The plan carries no randomness of its own — the runtime
:class:`~repro.faults.injector.FaultInjector` derives every draw from a
seed so two runs of the same plan are bit-identical.

Plans compose with :class:`~repro.sim.config.SimulationConfig` (the
``faults`` field) and can be parsed from the compact CLI spec accepted
by ``python -m repro simulate --faults``, e.g.::

    ack_loss=0.2,outage=43200+3600,reboot=3@86400,clock_skew=0.5
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class BurstLoss:
    """Gilbert-Elliott two-state burst-loss channel for downlinks.

    In the *good* state ACKs are subject only to the plan's independent
    loss probability; entering the *bad* state loses every ACK until the
    channel recovers.  Transition probabilities are evaluated once per
    ACK event.
    """

    #: P(good → bad) evaluated at each ACK.
    enter_probability: float
    #: P(bad → good) evaluated at each ACK.
    exit_probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.enter_probability <= 1.0:
            raise ConfigurationError("burst enter probability must be in [0, 1]")
        if not 0.0 < self.exit_probability <= 1.0:
            raise ConfigurationError("burst exit probability must be in (0, 1]")


@dataclass(frozen=True)
class GatewayOutage:
    """One contiguous window during which a gateway is down.

    A down gateway neither receives uplinks nor transmits ACKs.
    ``gateway_index`` of None takes the whole gateway fleet down (a
    backhaul or network-server outage).
    """

    start_s: float
    duration_s: float
    gateway_index: Optional[int] = None

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ConfigurationError("outage start cannot be negative")
        if self.duration_s <= 0:
            raise ConfigurationError("outage duration must be positive")
        if self.gateway_index is not None and self.gateway_index < 0:
            raise ConfigurationError("gateway index cannot be negative")

    @property
    def end_s(self) -> float:
        """Absolute end time of the outage."""
        return self.start_s + self.duration_s

    def covers(self, time_s: float) -> bool:
        """Whether ``time_s`` falls inside the outage window."""
        return self.start_s <= time_s < self.end_s


@dataclass(frozen=True)
class NodeReboot:
    """A scheduled brown-out reboot of one node.

    Rebooting wipes volatile MAC state (the Eq. 13/14 estimators and the
    disseminated ``w_u``), loses any in-flight packet and pending
    transition report, and makes the node re-request a fresh weight on
    its next delivered uplink.
    """

    node_id: int
    time_s: float

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ConfigurationError("node id cannot be negative")
        if self.time_s < 0:
            raise ConfigurationError("reboot time cannot be negative")


@dataclass(frozen=True)
class FaultPlan:
    """Composable, seed-reproducible description of everything that fails."""

    #: Independent per-ACK downlink loss probability.
    ack_loss_probability: float = 0.0
    #: Optional Gilbert-Elliott burst model layered on top.
    ack_burst: Optional[BurstLoss] = None
    #: Gateway outage windows (uplinks unreceived, ACKs untransmitted).
    gateway_outages: Tuple[GatewayOutage, ...] = field(default_factory=tuple)
    #: Scheduled node brown-out reboots.
    node_reboots: Tuple[NodeReboot, ...] = field(default_factory=tuple)
    #: Maximum absolute per-node clock skew (seconds) applied to window
    #: boundaries; each node draws a constant skew in [-s, +s].
    clock_skew_s: float = 0.0
    #: Log-sigma of multiplicative log-normal harvest-forecast corruption.
    forecast_corruption_sigma: float = 0.0
    #: Whether an energy brown-out during a transmission attempt also
    #: reboots the node (wiping MAC state) instead of just dropping the
    #: packet.
    reboot_on_brownout: bool = False
    #: Seed for every fault draw; None derives one from the simulation
    #: seed so the plan stays reproducible without explicit wiring.
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.ack_loss_probability <= 1.0:
            raise ConfigurationError("ack_loss_probability must be in [0, 1]")
        if self.clock_skew_s < 0:
            raise ConfigurationError("clock_skew_s cannot be negative")
        if self.forecast_corruption_sigma < 0:
            raise ConfigurationError("forecast_corruption_sigma cannot be negative")
        # Tolerate lists in hand-written plans; store hashable tuples.
        object.__setattr__(self, "gateway_outages", tuple(self.gateway_outages))
        object.__setattr__(self, "node_reboots", tuple(self.node_reboots))

    # ---------------------------------------------------------------- queries

    @property
    def is_empty(self) -> bool:
        """True when the plan injects nothing (fault-free world)."""
        return (
            self.ack_loss_probability == 0.0
            and self.ack_burst is None
            and not self.gateway_outages
            and not self.node_reboots
            and self.clock_skew_s == 0.0
            and self.forecast_corruption_sigma == 0.0
            and not self.reboot_on_brownout
        )

    def reboots_for(self, node_id: int) -> Tuple[NodeReboot, ...]:
        """The scheduled reboots of one node, in time order."""
        return tuple(
            sorted(
                (r for r in self.node_reboots if r.node_id == node_id),
                key=lambda r: r.time_s,
            )
        )

    # ---------------------------------------------------------------- parsing

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse the compact CLI fault spec.

        Comma-separated ``key=value`` items:

        * ``ack_loss=P`` — independent ACK loss probability,
        * ``burst=ENTER/EXIT`` — Gilbert-Elliott transition probabilities,
        * ``outage=START+DURATION`` or ``outage=START+DURATION@GW`` —
          repeatable gateway outage windows (seconds),
        * ``reboot=NODE@TIME`` — repeatable node reboots,
        * ``clock_skew=S`` — max per-node clock skew in seconds,
        * ``forecast_sigma=S`` — forecast corruption log-sigma,
        * ``brownout_reboot=0|1`` — reboot on energy brown-out,
        * ``seed=N`` — fault RNG seed.
        """
        kwargs: dict = {"gateway_outages": [], "node_reboots": []}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ConfigurationError(f"malformed fault spec item {item!r}")
            key, value = item.split("=", 1)
            key = key.strip()
            value = value.strip()
            try:
                if key == "ack_loss":
                    kwargs["ack_loss_probability"] = float(value)
                elif key == "burst":
                    enter, exit_ = value.split("/")
                    kwargs["ack_burst"] = BurstLoss(float(enter), float(exit_))
                elif key == "outage":
                    window, _, gw = value.partition("@")
                    start, duration = window.split("+")
                    kwargs["gateway_outages"].append(
                        GatewayOutage(
                            start_s=float(start),
                            duration_s=float(duration),
                            gateway_index=int(gw) if gw else None,
                        )
                    )
                elif key == "reboot":
                    node, time_s = value.split("@")
                    kwargs["node_reboots"].append(
                        NodeReboot(node_id=int(node), time_s=float(time_s))
                    )
                elif key == "clock_skew":
                    kwargs["clock_skew_s"] = float(value)
                elif key == "forecast_sigma":
                    kwargs["forecast_corruption_sigma"] = float(value)
                elif key == "brownout_reboot":
                    kwargs["reboot_on_brownout"] = value not in ("0", "false", "no")
                elif key == "seed":
                    kwargs["seed"] = int(value)
                else:
                    raise ConfigurationError(f"unknown fault spec key {key!r}")
            except (ValueError, TypeError) as error:
                if isinstance(error, ConfigurationError):
                    raise
                raise ConfigurationError(
                    f"malformed fault spec item {item!r}"
                ) from error
        return cls(**kwargs)

    def describe(self) -> str:
        """One-line human-readable summary (CLI banner)."""
        parts = []
        if self.ack_loss_probability > 0:
            parts.append(f"ack_loss={self.ack_loss_probability:g}")
        if self.ack_burst is not None:
            parts.append(
                f"burst={self.ack_burst.enter_probability:g}"
                f"/{self.ack_burst.exit_probability:g}"
            )
        for outage in self.gateway_outages:
            gw = "all" if outage.gateway_index is None else outage.gateway_index
            parts.append(f"outage[{gw}]={outage.start_s:g}+{outage.duration_s:g}s")
        for reboot in self.node_reboots:
            parts.append(f"reboot[{reboot.node_id}]@{reboot.time_s:g}s")
        if self.clock_skew_s > 0:
            parts.append(f"clock_skew={self.clock_skew_s:g}s")
        if self.forecast_corruption_sigma > 0:
            parts.append(f"forecast_sigma={self.forecast_corruption_sigma:g}")
        if self.reboot_on_brownout:
            parts.append("brownout_reboot")
        return " ".join(parts) if parts else "no faults"
