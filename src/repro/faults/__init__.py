"""Deterministic, seed-driven fault injection for the simulators.

BLAM's control loop is closed over the radio: degradation weights are
computed at the gateway and disseminated back in ACKs, so lost ACKs,
gateway outages, and node reboots silently break lifespan-aware
scheduling.  This package makes those failure modes first-class:

* :mod:`repro.faults.plan` — declarative :class:`FaultPlan` data,
* :mod:`repro.faults.models` — the runtime loss/outage/corruption models,
* :mod:`repro.faults.injector` — the :class:`FaultInjector` the engine
  consults at every event boundary, plus the :class:`FaultCounters`
  surfaced in run metrics.

Everything is driven by a single seed: two runs of the same plan are
bit-identical, and an empty plan is bit-identical to no plan at all.
"""

from .injector import FaultCounters, FaultInjector
from .models import AckLossChannel, CorruptedForecaster, OutageSchedule
from .plan import BurstLoss, FaultPlan, GatewayOutage, NodeReboot

__all__ = [
    "AckLossChannel",
    "BurstLoss",
    "CorruptedForecaster",
    "FaultCounters",
    "FaultInjector",
    "FaultPlan",
    "GatewayOutage",
    "NodeReboot",
    "OutageSchedule",
]
