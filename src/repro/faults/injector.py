"""The runtime fault injector the simulation engine consults.

One :class:`FaultInjector` is built per run from the configuration's
:class:`~repro.faults.plan.FaultPlan`.  The engine asks it a question at
each event boundary (is this gateway up? did this ACK survive? when does
this node reboot?) and reports recovery-path outcomes back into the
shared :class:`FaultCounters`, which the run's metrics surface.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import Callable, Dict, Optional, Tuple

from ..energy import EnergyForecaster
from .models import AckLossChannel, CorruptedForecaster, OutageSchedule
from .plan import FaultPlan, NodeReboot


@dataclass
class FaultCounters:
    """Per-fault event counters accumulated over one run."""

    #: ACKs lost on the downlink (independent + burst losses).
    acks_lost: int = 0
    #: Uplinks that arrived at a gateway while it was down.
    uplinks_lost_outage: int = 0
    #: ACKs suppressed because every gateway was down at ACK time.
    acks_lost_outage: int = 0
    #: Node brown-out reboots executed (scheduled + brown-out triggered).
    node_reboots: int = 0
    #: Packets abandoned because the retry budget was exhausted.
    retries_exhausted: int = 0
    #: Transmission attempts the battery could not fund.
    brownouts: int = 0
    #: Forecast values corrupted before reaching the MAC.
    forecasts_corrupted: int = 0
    #: Transmission attempts displaced by per-node clock skew.
    skewed_attempts: int = 0
    #: Periods scheduled while the node's ``w_u`` was past its TTL.
    stale_weight_periods: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Flat counter dict (merged into the metrics summary)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def total(self) -> int:
        """Sum of every counter (quick did-anything-fire check)."""
        return sum(self.as_dict().values())


class FaultInjector:
    """Deterministic oracle answering the engine's fault questions."""

    def __init__(
        self,
        plan: FaultPlan,
        gateway_count: int = 1,
        default_seed: int = 0,
    ) -> None:
        self.plan = plan
        seed = plan.seed if plan.seed is not None else default_seed ^ 0xFA17
        self._seed = seed
        self.counters = FaultCounters()
        self._ack_channel = AckLossChannel(
            probability=plan.ack_loss_probability,
            burst=plan.ack_burst,
            seed=seed,
        )
        self._outages = OutageSchedule(plan.gateway_outages, gateway_count)
        self._skews: Dict[int, float] = {}
        #: Optional :class:`~repro.obs.TraceBus`; None keeps tracing free.
        self._trace = None
        #: Clock callable supplying event timestamps for counter-style
        #: firings that carry no time of their own.  None until bound —
        #: engine hooks are re-bound after a checkpoint resume.
        self._now: Optional[Callable[[], float]] = None

    def bind_trace(self, bus, now: Optional[Callable[[], float]] = None) -> None:
        """Attach a trace bus (and the engine clock) for fault events."""
        self._trace = bus
        if now is not None:
            self._now = now

    def rebind(self, trace, now: Optional[Callable[[], float]]) -> None:
        """Restore the engine hooks pickling strips (checkpoint resume)."""
        self._trace = trace
        self._now = now

    def __getstate__(self) -> Dict[str, object]:
        """Snapshot without the live engine hooks.

        The trace bus is owned (and separately pickled) by the engine's
        observability bundle, and the clock is a per-engine callable;
        :meth:`rebind` reattaches both when a checkpoint is restored.
        """
        state = dict(self.__dict__)
        state["_trace"] = None
        state["_now"] = None
        return state

    def _emit(
        self,
        name: str,
        time_s: Optional[float] = None,
        severity: str = "warning",
        **fields: object,
    ) -> None:
        if self._trace is not None:
            if time_s is None:
                time_s = self._now() if self._now is not None else 0.0
            self._trace.emit(
                time_s,
                "fault",
                name,
                severity=severity,
                **fields,
            )

    # ----------------------------------------------------------- downlink/ACK

    def ack_lost(self, node_id: int, time_s: float) -> bool:
        """Whether the ACK sent to ``node_id`` at ``time_s`` is lost."""
        if self._outages.all_down(time_s):
            self.counters.acks_lost_outage += 1
            self._emit("fault.ack_lost_outage", time_s, node_id=node_id)
            return True
        if self.plan.ack_loss_probability <= 0.0 and self.plan.ack_burst is None:
            return False
        if self._ack_channel.lost(node_id):
            self.counters.acks_lost += 1
            self._emit("fault.ack_lost", time_s, node_id=node_id)
            return True
        return False

    # --------------------------------------------------------------- gateways

    def gateway_down(self, gateway_index: int, time_s: float) -> bool:
        """Whether one gateway is in an outage window at ``time_s``."""
        return self._outages.gateway_down(gateway_index, time_s)

    def record_uplink_lost_outage(self) -> None:
        """Count an uplink that hit a down gateway."""
        self.counters.uplinks_lost_outage += 1
        self._emit("fault.uplink_lost_outage")

    # ---------------------------------------------------------------- reboots

    def reboots_for(self, node_id: int) -> Tuple[NodeReboot, ...]:
        """Scheduled brown-out reboots of one node, in time order."""
        return self.plan.reboots_for(node_id)

    def record_reboot(self) -> None:
        """Count an executed node reboot."""
        self.counters.node_reboots += 1
        self._emit("fault.node_reboot")

    @property
    def reboot_on_brownout(self) -> bool:
        """Whether energy brown-outs escalate to full reboots."""
        return self.plan.reboot_on_brownout

    # ------------------------------------------------------------ clock skew

    def clock_skew_s(self, node_id: int) -> float:
        """The node's constant clock skew, drawn once per node."""
        if self.plan.clock_skew_s == 0.0:
            return 0.0
        skew = self._skews.get(node_id)
        if skew is None:
            rng = random.Random(self._seed * 1_000_003 + node_id)
            skew = rng.uniform(-self.plan.clock_skew_s, self.plan.clock_skew_s)
            self._skews[node_id] = skew
        return skew

    def skew_attempt(self, node_id: int, attempt_s: float, now_s: float) -> float:
        """Displace a planned attempt time by the node's clock skew.

        The skewed time never precedes ``now_s`` (causality) — a node
        whose clock runs early still cannot transmit before its packet
        exists.
        """
        skew = self.clock_skew_s(node_id)
        if skew == 0.0:
            return attempt_s
        skewed = max(now_s, attempt_s + skew)
        if skewed != attempt_s:
            self.counters.skewed_attempts += 1
            self._emit(
                "fault.attempt_skewed",
                now_s,
                severity="debug",
                node_id=node_id,
                planned_s=attempt_s,
                skewed_s=skewed,
            )
        return skewed

    # ------------------------------------------------------------- forecasts

    def wrap_forecaster(
        self, forecaster: EnergyForecaster, node_id: int
    ) -> EnergyForecaster:
        """Wrap a node's forecaster with corruption, when the plan asks."""
        sigma = self.plan.forecast_corruption_sigma
        if sigma <= 0.0:
            return forecaster
        return CorruptedForecaster(
            forecaster,
            sigma=sigma,
            seed=self._seed * 69_991 + node_id,
            on_corruption=_CorruptionCounter(self, node_id),
        )

    # --------------------------------------------------------------- recovery

    def record_retry_exhausted(self) -> None:
        """Count a packet abandoned past the retransmission cap."""
        self.counters.retries_exhausted += 1
        self._emit("fault.retry_exhausted")

    def record_brownout(self) -> None:
        """Count an attempt the battery could not fund."""
        self.counters.brownouts += 1
        self._emit("fault.brownout")

    #: Picklable brown-out hook handed to :class:`EndDevice` (a bound
    #: method, unlike the closure it replaced, survives checkpointing).
    def on_brownout(self, shortfall_j: float) -> None:
        self.record_brownout()

    def record_stale_weight_period(self) -> None:
        """Count a period scheduled with a stale (past-TTL) ``w_u``."""
        self.counters.stale_weight_periods += 1
        self._emit("fault.stale_weight_period", severity="debug")


class _CorruptionCounter:
    """Picklable corruption callback (replaces a per-node closure).

    :class:`~repro.faults.models.CorruptedForecaster` stores its
    ``on_corruption`` hook, so the hook rides inside checkpoints; a
    module-level class with plain attributes pickles, a closure does not.
    """

    __slots__ = ("_injector", "_node_id")

    def __init__(self, injector: FaultInjector, node_id: int) -> None:
        self._injector = injector
        self._node_id = node_id

    def __call__(self, n: int) -> None:
        self._injector.counters.forecasts_corrupted += n
        self._injector._emit(
            "fault.forecast_corrupted",
            severity="debug",
            node_id=self._node_id,
            values=n,
        )
