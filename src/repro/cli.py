"""Command-line interface: ``python -m repro <command>``.

Four commands cover the common workflows:

* ``simulate`` — run one configuration under one MAC policy and print
  the paper's metrics plus the extrapolated battery lifespan.  The
  observability flags (``--trace``, ``--trace-out``, ``--metrics-out``,
  ``--manifest-out``, ``--json``) expose the ``repro.obs`` layer.
* ``figure`` — regenerate one of the paper's figures/tables by id
  (``2``-``9`` or ``table1``) and print its rows/series.
* ``replicates`` — run LoRaWAN and H-θ across several seeds and print
  the paired lifespan gain with a 95 % confidence interval.
* ``sweep`` — fan a (policy × config-axis × seed) grid across
  multiprocessing workers and aggregate per-run records into one
  ``SWEEP.json`` (deterministic merge; see docs/PERFORMANCE.md).
  Self-healing flags (``--timeout``, ``--max-retries``,
  ``--checkpoint-dir``, ``--resume``) are documented in
  docs/ROBUSTNESS.md.
* ``resume`` — continue an interrupted ``simulate`` run from its newest
  checkpoint (bit-identical to the uninterrupted run).
* ``trace`` — pretty-print / filter a JSONL trace written by
  ``simulate --trace-out``; ``--follow`` streams new events live
  (``tail -f`` semantics).
* ``serve`` — the long-running simulation service: an asyncio HTTP API
  that accepts simulate/sweep specs, runs them through this same CLI in
  supervised subprocesses, and exposes live progress, NDJSON event
  streams, and a Prometheus ``/metrics`` scrape (docs/SERVICE.md).

``simulate``, ``resume`` and ``sweep`` install SIGINT/SIGTERM handlers:
a signal stops the run at the next event boundary, writes a rescue
checkpoint (when ``--checkpoint-dir`` is set), flushes the trace sink
and exits with the conventional ``128 + signum`` code.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .checkpoint import interrupt as _interrupt
from .constants import SECONDS_PER_DAY
from .exceptions import CheckpointError, ConfigurationError, SimulationInterrupted
from .faults import FaultPlan
from .ioutil import atomic_write_text
from .obs import CATEGORIES, SEVERITIES, filter_events, format_event, iter_jsonl
from .sim import SimulationConfig, run_mesoscopic, run_simulation


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Battery lifespan-aware LoRa MAC (ICDCS 2024) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="run one simulation")
    simulate.add_argument("--nodes", type=int, default=50)
    simulate.add_argument("--days", type=float, default=7.0)
    simulate.add_argument(
        "--gateways", type=int, default=1,
        help="gateway count (each gateway anchors one contention cell)",
    )
    simulate.add_argument(
        "--policy",
        choices=("lorawan", "h", "hc"),
        default="h",
        help="lorawan = pure ALOHA; h = proposed MAC; hc = θ cap only",
    )
    simulate.add_argument("--theta", type=float, default=0.5, help="SoC cap θ")
    simulate.add_argument("--w-b", type=float, default=1.0, dest="w_b")
    simulate.add_argument("--seed", type=int, default=1)
    simulate.add_argument(
        "--engine",
        choices=("meso", "exact"),
        default="meso",
        help="meso = fast mesoscopic runner; exact = event-driven engine",
    )
    simulate.add_argument(
        "--faults",
        type=str,
        default=None,
        metavar="SPEC",
        help=(
            "fault-injection spec (exact engine), e.g. "
            "'ack_loss=0.2,burst=0.05/0.3,outage=43200+3600,"
            "reboot=3@86400,clock_skew=0.5,forecast_sigma=0.3,seed=7'"
        ),
    )
    simulate.add_argument(
        "--w-u-ttl-days",
        type=float,
        default=None,
        dest="w_u_ttl_days",
        help="TTL (days) before nodes decay a stale disseminated w_u",
    )
    simulate.add_argument(
        "--no-vectorized",
        action="store_false",
        dest="vectorized",
        help=(
            "run the mesoscopic engine's scalar reference sweep instead "
            "of the (bit-identical) vectorized fast path"
        ),
    )
    simulate.add_argument(
        "--memory-profile",
        choices=("exact", "diet"),
        default="exact",
        dest="memory_profile",
        help=(
            "diet = compact SoC traces, capped caches, counter-only "
            "packet logs outside --sample-nodes (multi-year memory diet)"
        ),
    )
    simulate.add_argument(
        "--sample-nodes",
        type=str,
        default=None,
        metavar="ID1,ID2,…",
        dest="sample_nodes",
        help="node ids that keep full per-packet rows under --memory-profile diet",
    )
    simulate.add_argument(
        "--shards",
        type=int,
        default=None,
        help=(
            "partition the topology by gateway cell and run each shard "
            "in its own process (meso engine; <= gateway count)"
        ),
    )
    simulate.add_argument(
        "--shard-workers",
        type=int,
        default=1,
        dest="shard_workers",
        help="concurrent shard worker processes (with --shards)",
    )
    simulate.add_argument(
        "--dist-listen",
        type=str,
        default=None,
        metavar="HOST:PORT",
        dest="dist_listen",
        help=(
            "listen for repro worker agents and lease shard cells to "
            "them instead of local processes (requires --shards; "
            "port 0 picks an ephemeral port, printed on stderr)"
        ),
    )
    simulate.add_argument(
        "--min-workers",
        type=int,
        default=1,
        dest="min_workers",
        help="wait for this many connected workers before dispatching",
    )
    simulate.add_argument(
        "--trace",
        action="store_true",
        help="record structured trace events (in-memory ring buffer)",
    )
    simulate.add_argument(
        "--trace-out",
        type=str,
        default=None,
        metavar="PATH",
        help="stream trace events to a JSONL file (implies --trace)",
    )
    simulate.add_argument(
        "--trace-categories",
        type=str,
        default=None,
        metavar="CATS",
        help=(
            "comma-separated event categories to record "
            f"(subset of {','.join(CATEGORIES)})"
        ),
    )
    simulate.add_argument(
        "--metrics-out",
        type=str,
        default=None,
        metavar="PATH",
        help="write the run's metrics registry (.json → JSON, else Prometheus text)",
    )
    simulate.add_argument(
        "--manifest-out",
        type=str,
        default=None,
        metavar="PATH",
        help="write the run manifest JSON (defaults next to --trace-out)",
    )
    simulate.add_argument(
        "--checkpoint-dir",
        type=str,
        default=None,
        metavar="DIR",
        dest="checkpoint_dir",
        help="write periodic crash-safe checkpoints into this directory",
    )
    simulate.add_argument(
        "--checkpoint-every",
        type=float,
        default=None,
        metavar="DAYS",
        dest="checkpoint_every",
        help="checkpoint cadence in days (default 1 with --checkpoint-dir)",
    )
    simulate.add_argument(
        "--profile-hot",
        action="store_true",
        dest="profile_hot",
        help=(
            "time every hot-loop kernel invocation and print the ranked "
            "per-kernel table (counters also land in --metrics-out)"
        ),
    )
    simulate.add_argument(
        "--no-exact-batched",
        action="store_false",
        dest="exact_batched",
        help=(
            "drain the exact engine's event heap one event at a time "
            "instead of the (identical) batched same-instant fast path"
        ),
    )
    simulate.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit one machine-readable JSON object instead of text",
    )

    resume = sub.add_parser(
        "resume", help="resume an interrupted run from a checkpoint"
    )
    resume.add_argument(
        "path",
        help="checkpoint file, or a checkpoint directory (newest wins)",
    )
    resume.add_argument(
        "--metrics-out",
        type=str,
        default=None,
        metavar="PATH",
        help="write the run's metrics registry (.json → JSON, else Prometheus text)",
    )
    resume.add_argument(
        "--manifest-out",
        type=str,
        default=None,
        metavar="PATH",
        help="write the run manifest JSON",
    )
    resume.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit one machine-readable JSON object instead of text",
    )

    trace = sub.add_parser(
        "trace", help="pretty-print / filter a JSONL trace file"
    )
    trace.add_argument("path", help="JSONL trace written by simulate --trace-out")
    trace.add_argument(
        "--category",
        action="append",
        choices=CATEGORIES,
        default=None,
        help="keep only these categories (repeatable)",
    )
    trace.add_argument("--node", type=int, default=None, help="keep one node's events")
    trace.add_argument(
        "--name", type=str, default=None, help="keep events whose name contains this"
    )
    trace.add_argument(
        "--min-severity",
        choices=tuple(SEVERITIES),
        default="debug",
        help="drop events below this severity",
    )
    trace.add_argument("--since", type=float, default=None, metavar="SECONDS")
    trace.add_argument("--until", type=float, default=None, metavar="SECONDS")
    trace.add_argument(
        "--limit", type=int, default=None, help="stop after this many events"
    )
    trace.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="re-emit the matching events as JSONL instead of text",
    )
    trace.add_argument(
        "--follow",
        "-f",
        action="store_true",
        help=(
            "keep the file open and stream events as they are appended "
            "(tail -f); waits for the file if it does not exist yet"
        ),
    )
    trace.add_argument(
        "--poll-interval",
        type=float,
        default=0.2,
        metavar="SECONDS",
        dest="poll_interval",
        help="how often --follow polls the file for new lines",
    )

    figure = sub.add_parser("figure", help="regenerate a paper figure/table")
    figure.add_argument(
        "id",
        choices=("2", "3", "4", "5", "6", "7", "8", "9", "table1"),
        help="paper figure number or 'table1'",
    )

    replicates = sub.add_parser(
        "replicates", help="multi-seed comparison with confidence intervals"
    )
    replicates.add_argument("--nodes", type=int, default=30)
    replicates.add_argument("--days", type=float, default=5.0)
    replicates.add_argument("--theta", type=float, default=0.5)
    replicates.add_argument("--seeds", type=int, default=5, help="number of seeds")

    sweep = sub.add_parser(
        "sweep", help="parallel (policy × axis × seed) grid of runs"
    )
    sweep.add_argument("--nodes", type=int, default=30)
    sweep.add_argument("--days", type=float, default=5.0)
    sweep.add_argument(
        "--gateways", type=int, default=1,
        help="gateway count for every run in the grid",
    )
    sweep.add_argument(
        "--engine", choices=("meso", "exact"), default="meso",
        help="engine used for every run in the grid",
    )
    sweep.add_argument(
        "--policies", type=str, default="h",
        help="comma-separated policy variants: lorawan, h, hc",
    )
    sweep.add_argument("--theta", type=float, default=0.5, help="SoC cap θ")
    sweep.add_argument(
        "--seeds", type=int, default=3,
        help="number of seeds (1..N); overridden by --seed-list",
    )
    sweep.add_argument(
        "--seed-list", type=str, default=None, metavar="S1,S2,…",
        dest="seed_list", help="explicit comma-separated seed values",
    )
    sweep.add_argument(
        "--axis", action="append", default=None, metavar="FIELD=V1,V2,…",
        help="config-field override axis (repeatable; cartesian product)",
    )
    sweep.add_argument(
        "--memory-profile", choices=("exact", "diet"), default="exact",
        dest="memory_profile",
        help="memory profile applied to every run in the grid",
    )
    sweep.add_argument(
        "--sample-nodes", type=str, default=None, metavar="ID1,ID2,…",
        dest="sample_nodes",
        help="node ids keeping full per-packet rows under diet runs",
    )
    sweep.add_argument(
        "--shards", type=int, default=None,
        help="gateway-cell shards per run (meso engine; <= gateway count)",
    )
    sweep.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = serial; results identical either way)",
    )
    sweep.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        dest="timeout_s",
        help="per-run wall-clock budget; stuck workers are killed and retried",
    )
    sweep.add_argument(
        "--max-retries", type=int, default=0, dest="max_retries",
        help="retries per run after a worker crash or timeout",
    )
    sweep.add_argument(
        "--checkpoint-dir", type=str, default=None, metavar="DIR",
        dest="checkpoint_dir",
        help="per-run checkpoint root; retries resume from the newest snapshot",
    )
    sweep.add_argument(
        "--checkpoint-every", type=float, default=None, metavar="DAYS",
        dest="checkpoint_every",
        help="checkpoint cadence in days (default 1 with --checkpoint-dir)",
    )
    sweep.add_argument(
        "--resume", type=str, default=None, metavar="REPORT",
        dest="resume_report",
        help="re-run only the unfinished cells of a previous SWEEP.json",
    )
    sweep.add_argument(
        "--out", type=str, default=None, metavar="PATH",
        help="write the aggregated SWEEP.json here (default: the --resume report)",
    )
    sweep.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the SWEEP.json document instead of the text summary",
    )
    sweep.add_argument(
        "--progress-out", type=str, default=None, metavar="PATH",
        dest="progress_out",
        help=(
            "append one NDJSON record per finished cell, flushed live "
            "(what repro serve tails for sweep-wide metrics)"
        ),
    )
    sweep.add_argument(
        "--trace-dir", type=str, default=None, metavar="DIR",
        dest="trace_dir",
        help=(
            "per-cell JSONL event traces into DIR/run_<index>.jsonl "
            "(results stay bit-identical; repro serve streams these)"
        ),
    )
    sweep.add_argument(
        "--dist-listen", type=str, default=None, metavar="HOST:PORT",
        dest="dist_listen",
        help=(
            "lease every run's shard cells to connected repro worker "
            "agents (requires --shards; incompatible with --workers > 1)"
        ),
    )
    sweep.add_argument(
        "--min-workers", type=int, default=1, dest="min_workers",
        help="wait for this many connected workers before dispatching",
    )

    serve = sub.add_parser(
        "serve",
        help="run the asyncio simulation service (HTTP API + /metrics)",
    )
    serve.add_argument("--host", type=str, default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8321,
        help="TCP port (0 picks an ephemeral port, printed on startup)",
    )
    serve.add_argument(
        "--data-dir", type=str, default="repro-service", dest="data_dir",
        help="root directory for per-run artifacts (specs, reports, traces)",
    )
    serve.add_argument(
        "--max-parallel", type=int, default=1, dest="max_parallel",
        help="how many submitted runs may execute concurrently",
    )
    serve.add_argument(
        "--checkpoint-every", type=float, default=1.0, metavar="DAYS",
        dest="checkpoint_every",
        help="checkpoint cadence armed on every submitted run (days)",
    )
    serve.add_argument(
        "--max-queued", type=int, default=None, dest="max_queued",
        help=(
            "bound on queued (not yet running) runs; further POST /runs "
            "submissions get 429 until the queue drains"
        ),
    )

    worker = sub.add_parser(
        "worker",
        help="join a coordinator as a dist shard worker (docs/DISTRIBUTED.md)",
    )
    worker.add_argument(
        "--connect", type=str, required=True, metavar="HOST:PORT",
        help="coordinator address (repro simulate/sweep --dist-listen)",
    )
    worker.add_argument(
        "--name", type=str, default=None,
        help="worker name for logs and metrics (default: host-pid)",
    )
    worker.add_argument(
        "--slots", type=int, default=1,
        help="concurrent cell leases this worker accepts",
    )
    worker.add_argument(
        "--heartbeat", type=float, default=2.0, metavar="SECONDS",
        dest="heartbeat_s", help="heartbeat cadence",
    )
    worker.add_argument(
        "--reconnect-for", type=float, default=30.0, metavar="SECONDS",
        dest="reconnect_for_s",
        help="keep retrying a lost coordinator this long before exiting",
    )
    worker.add_argument(
        "--expect-config-hash", type=str, default=None,
        dest="expect_config_hash",
        help="refuse to serve a coordinator running a different config",
    )
    return parser


def _config_from_args(args: argparse.Namespace) -> SimulationConfig:
    faults = None
    spec = getattr(args, "faults", None)
    if spec:
        faults = FaultPlan.from_spec(spec)
    ttl_days = getattr(args, "w_u_ttl_days", None)
    categories = getattr(args, "trace_categories", None)
    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    every_days = getattr(args, "checkpoint_every", None)
    if checkpoint_dir is not None and every_days is None:
        every_days = 1.0
    sample_spec = getattr(args, "sample_nodes", None)
    sample_nodes = (
        None
        if sample_spec is None
        else tuple(int(t) for t in str(sample_spec).split(",") if t.strip())
    )
    base = SimulationConfig(
        memory_profile=getattr(args, "memory_profile", "exact"),
        sample_nodes=sample_nodes,
        shards=getattr(args, "shards", None),
        checkpoint_dir=checkpoint_dir,
        checkpoint_every_s=(
            None if every_days is None else every_days * SECONDS_PER_DAY
        ),
        node_count=args.nodes,
        gateway_count=getattr(args, "gateways", 1),
        duration_s=args.days * SECONDS_PER_DAY,
        w_b=getattr(args, "w_b", 1.0),
        seed=args.seed,
        faults=faults,
        w_u_ttl_s=None if ttl_days is None else ttl_days * SECONDS_PER_DAY,
        trace=getattr(args, "trace", False),
        trace_path=getattr(args, "trace_out", None),
        vectorized=getattr(args, "vectorized", True),
        exact_batched=getattr(args, "exact_batched", True),
        trace_categories=(
            None
            if categories is None
            else tuple(c.strip() for c in categories.split(",") if c.strip())
        ),
    )
    if args.policy == "lorawan":
        return base.as_lorawan()
    if args.policy == "hc":
        return base.as_hc(args.theta)
    return base.as_h(args.theta)


def _default_manifest_path(trace_out: str) -> str:
    if trace_out.endswith(".jsonl"):
        return trace_out[: -len(".jsonl")] + ".manifest.json"
    return trace_out + ".manifest.json"


def _write_metrics(path: str, registry) -> None:
    """Atomically export a metrics registry (JSON or Prometheus text)."""
    if path.endswith(".json"):
        atomic_write_text(path, registry.to_json_text())
    else:
        atomic_write_text(path, registry.to_prometheus())


def _interrupted_exit(exc: SimulationInterrupted) -> int:
    """Report a graceful signal stop and map it to ``128 + signum``."""
    print(f"interrupted at t={exc.time_s:.3f}s", file=sys.stderr)
    if exc.checkpoint_path is not None:
        print(
            f"checkpoint written to {exc.checkpoint_path} "
            "(continue with: repro resume <path>)",
            file=sys.stderr,
        )
    return 128 + (exc.signum if exc.signum is not None else 2)


def _start_dist_server(listen: str, min_workers: int):
    """Bind the coordinator socket and announce it on stderr.

    The listening line goes to stderr, flushed, so ``--json`` stdout
    stays machine-readable and scripts can scrape the ephemeral port.
    """
    from .dist import DistServer, DistTransport

    host, _, port_text = listen.rpartition(":")
    if not host or not port_text.lstrip("-").isdigit():
        raise ConfigurationError(
            f"--dist-listen expects HOST:PORT, got {listen!r}"
        )
    server = DistServer(host, int(port_text))
    print(
        f"dist: listening on {server.bound_host}:{server.bound_port} "
        f"(waiting for {min_workers} worker(s))",
        file=sys.stderr,
        flush=True,
    )
    return server, DistTransport(server, min_workers=min_workers)


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.checkpoint_every is not None and args.checkpoint_dir is None:
        print("--checkpoint-every requires --checkpoint-dir", file=sys.stderr)
        return 2
    config = _config_from_args(args)
    engine = args.engine
    notices: List[str] = []
    if config.faults is not None and engine != "exact":
        # The mesoscopic runner has no event boundaries to inject at.
        notices.append("fault plan supplied: switching to the exact engine")
        engine = "exact"
    if engine == "exact" and config.shards is not None:
        # The exact engine is a single event loop; sharding is a
        # mesoscopic decomposition.  Results are unaffected either way.
        notices.append("--shards ignored by the exact engine")
        config = config.replace(shards=None)
    if args.dist_listen is not None and (
        engine != "meso" or config.shards is None
    ):
        print(
            "--dist-listen requires the meso engine with --shards "
            "(cells are the unit of distribution)",
            file=sys.stderr,
        )
        return 2
    server = transport = None
    if args.dist_listen is not None:
        try:
            server, transport = _start_dist_server(
                args.dist_listen, args.min_workers
            )
        except (ConfigurationError, OSError) as exc:
            print(f"cannot listen for workers: {exc}", file=sys.stderr)
            return 2
    profile_hot = getattr(args, "profile_hot", False)
    prof = kernel_backend_name = None
    if profile_hot:
        from .kernels import backend as _kernel_backend
        from .obs import hot_profiler

        kernel_backend_name = _kernel_backend()
        prof = hot_profiler()
        prof.reset()
        prof.enable()
    _interrupt.install()
    try:
        if engine == "exact":
            result = run_simulation(config)
            lifespan = None
        else:
            result = run_mesoscopic(
                config,
                shard_workers=getattr(args, "shard_workers", 1),
                transport=transport,
            )
            lifespan = result.network_lifespan_days()
    except SimulationInterrupted as exc:
        return _interrupted_exit(exc)
    finally:
        if prof is not None:
            prof.disable()
        if server is not None:
            server.shutdown()

    manifest = result.manifest
    manifest_out = args.manifest_out
    if manifest_out is None and args.trace_out is not None:
        manifest_out = _default_manifest_path(args.trace_out)
    if manifest_out is not None and manifest is not None:
        manifest.write(manifest_out)
    if prof is not None and result.obs is not None:
        # The per-kernel counters ride along in the registry export.
        prof.publish(result.obs.metrics, kernel_backend_name)
    if args.metrics_out is not None and result.obs is not None:
        _write_metrics(args.metrics_out, result.obs.metrics)

    summary = result.metrics.summary()
    if args.as_json:
        payload = {
            "policy": config.policy_name,
            "engine": engine,
            "nodes": config.node_count,
            "days": config.duration_s / SECONDS_PER_DAY,
            "seed": config.seed,
            "metrics": summary,
        }
        if lifespan is not None:
            payload["lifespan_days"] = lifespan
        if config.faults is not None:
            payload["faults"] = config.faults.describe()
        if manifest is not None:
            payload["manifest"] = manifest.to_dict()
        if manifest_out is not None:
            payload["manifest_path"] = manifest_out
        if prof is not None:
            payload["hot_kernels"] = {
                "backend": kernel_backend_name,
                "kernels": prof.stats,
            }
        print(json.dumps(payload, sort_keys=True))
        return 0

    for notice in notices:
        print(notice)
    print(f"policy: {config.policy_name}  nodes: {config.node_count}  "
          f"days: {config.duration_s / SECONDS_PER_DAY:g}  engine: {engine}")
    if config.faults is not None:
        print(f"faults: {config.faults.describe()}")
    for key, value in summary.items():
        print(f"  {key:28s} {value:.6g}")
    if lifespan is not None:
        print(f"  {'lifespan_days':28s} {lifespan:.6g}")
    # Timing lines only appear when observability output was requested:
    # the plain summary must stay bit-identical across repeated seeded runs.
    observing = (args.trace or args.trace_out is not None
                 or args.metrics_out is not None
                 or args.manifest_out is not None)
    if manifest is not None and observing:
        print(f"  {'wall_s':28s} {manifest.wall_s:.6g}")
        if manifest.sim_s_per_wall_s:
            print(f"  {'sim_s_per_wall_s':28s} {manifest.sim_s_per_wall_s:.6g}")
    if prof is not None:
        print(prof.render_table(kernel_backend_name))
    if args.trace_out is not None:
        print(f"trace written to {args.trace_out}")
    if manifest_out is not None:
        print(f"manifest written to {manifest_out}")
    if args.metrics_out is not None:
        print(f"metrics written to {args.metrics_out}")
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    from .checkpoint import resume as resume_checkpoint

    _interrupt.install()
    try:
        sim, header = resume_checkpoint(args.path)
    except (CheckpointError, OSError) as exc:
        print(f"cannot resume: {exc}", file=sys.stderr)
        return 2
    engine = str(header.get("engine", "?"))
    if not args.as_json:
        print(
            f"resuming {engine} run from t={float(header['time_s']):g}s "
            f"(seed {header.get('seed')}, {header.get('node_count')} nodes)"
        )
    try:
        result = sim.run()
    except SimulationInterrupted as exc:
        return _interrupted_exit(exc)

    config = sim.config
    manifest = result.manifest
    if args.manifest_out is not None and manifest is not None:
        manifest.write(args.manifest_out)
    if args.metrics_out is not None and result.obs is not None:
        _write_metrics(args.metrics_out, result.obs.metrics)
    lifespan = (
        result.network_lifespan_days() if engine == "meso" else None
    )
    summary = result.metrics.summary()
    if args.as_json:
        payload = {
            "resumed_from_s": float(header["time_s"]),
            "policy": config.policy_name,
            "engine": engine,
            "nodes": config.node_count,
            "days": config.duration_s / SECONDS_PER_DAY,
            "seed": config.seed,
            "metrics": summary,
        }
        if lifespan is not None:
            payload["lifespan_days"] = lifespan
        print(json.dumps(payload, sort_keys=True))
        return 0
    print(f"policy: {config.policy_name}  nodes: {config.node_count}  "
          f"days: {config.duration_s / SECONDS_PER_DAY:g}  engine: {engine}")
    for key, value in summary.items():
        print(f"  {key:28s} {value:.6g}")
    if lifespan is not None:
        print(f"  {'lifespan_days':28s} {lifespan:.6g}")
    if args.metrics_out is not None:
        print(f"metrics written to {args.metrics_out}")
    if args.manifest_out is not None:
        print(f"manifest written to {args.manifest_out}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.follow:
        from .obs import follow_events

        source = follow_events(args.path, poll_interval_s=args.poll_interval)
    else:
        source = iter_jsonl(args.path)
    events = filter_events(
        source,
        categories=args.category,
        node_id=args.node,
        name_substring=args.name,
        min_severity=args.min_severity,
        since_s=args.since,
        until_s=args.until,
    )
    shown = 0
    try:
        for event in events:
            print(
                event.to_json() if args.as_json else format_event(event),
                flush=args.follow,
            )
            shown += 1
            # break immediately at the limit — pulling one more event
            # first would block forever under --follow
            if args.limit is not None and shown >= args.limit:
                break
    except KeyboardInterrupt:
        # The conventional way out of tail -f; what was shown stands.
        pass
    if not args.as_json:
        print(f"{shown} event(s)")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from . import experiments as ex

    if args.id == "2":
        print(ex.format_series(ex.fig2_degradation_components(), x_label="months", every=6))
    elif args.id == "3":
        outcome = ex.fig3_degradation_influence()
        rows = [
            [p, c["highest_degraded"] + 1, c["lowest_degraded"] + 1]
            for p, c in outcome.items()
        ]
        print(ex.format_table(["period", "highest-degraded", "lowest-degraded"], rows))
    elif args.id == "4":
        print(ex.format_histograms(ex.fig4_window_selection()))
    elif args.id == "5":
        print(ex.format_policy_metrics(ex.fig5_energy_and_degradation()))
    elif args.id == "6":
        print(ex.format_policy_metrics(ex.fig6_network_performance()))
    elif args.id == "7":
        print(ex.format_series(ex.fig7_max_degradation_by_month(), x_label="month", every=12))
    elif args.id == "8":
        rows = [
            [name, round(days), round(days / 365.0, 2)]
            for name, days in ex.fig8_network_lifespan().items()
        ]
        print(ex.format_table(["policy", "days", "years"], rows))
    elif args.id == "9":
        print(ex.format_policy_metrics(ex.fig9_testbed()))
    else:  # table1
        rows = ex.measure_overhead()
        overhead = ex.relative_cpu_overhead(rows)
        table = [
            [r.policy, round(r.cpu_us_per_period, 2), r.peak_alloc_bytes, r.code_size_bytes]
            for r in rows.values()
        ]
        print(ex.format_table(["policy", "CPU µs/period", "alloc (B)", "code (B)"], table))
        print(f"relative CPU overhead: +{overhead * 100:.1f}%")
    return 0


def _sweep_spec_from_args(args: argparse.Namespace) -> dict:
    """The grid-defining CLI arguments, embedded in SWEEP.json."""
    return {
        "nodes": args.nodes,
        "days": args.days,
        "gateways": getattr(args, "gateways", 1),
        "policies": args.policies,
        "theta": args.theta,
        "seeds": args.seeds,
        "seed_list": args.seed_list,
        "axis": list(args.axis or ()),
        "memory_profile": getattr(args, "memory_profile", "exact"),
        "sample_nodes": getattr(args, "sample_nodes", None),
        "shards": getattr(args, "shards", None),
    }


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .sweep import (
        SCHEMA,
        RunRecord,
        grid_from_spec,
        interrupt_exit_code,
        run_sweep,
        summarize,
    )

    if args.checkpoint_every is not None and args.checkpoint_dir is None:
        print("--checkpoint-every requires --checkpoint-dir", file=sys.stderr)
        return 2
    if args.dist_listen is not None:
        if args.shards is None and args.resume_report is None:
            print(
                "--dist-listen requires --shards (cells are the unit of "
                "distribution)",
                file=sys.stderr,
            )
            return 2
        if args.workers > 1 or args.timeout_s is not None:
            print(
                "--dist-listen runs grid points serially in-process; drop "
                "--workers/--timeout (per-cell timeouts and retries are "
                "the dist scheduler's job)",
                file=sys.stderr,
            )
            return 2
    engine = args.engine
    existing = None
    out = args.out
    if args.resume_report is not None:
        try:
            with open(args.resume_report, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read sweep report: {exc}", file=sys.stderr)
            return 2
        if doc.get("schema") != SCHEMA:
            print(
                f"cannot resume report with schema {doc.get('schema')!r} "
                f"(expected {SCHEMA!r})",
                file=sys.stderr,
            )
            return 2
        spec = doc.get("spec")
        if not spec:
            print(
                "sweep report has no embedded grid spec; re-run without --resume",
                file=sys.stderr,
            )
            return 2
        engine = str(doc.get("engine", engine))
        existing = {
            int(run["index"]): RunRecord.from_dict(run)
            for run in doc.get("runs", ())
            if run.get("status") in ("completed", "resumed")
        }
        if out is None:
            out = args.resume_report
    else:
        spec = _sweep_spec_from_args(args)

    try:
        points = grid_from_spec(spec)
    except (ConfigurationError, KeyError, ValueError) as exc:
        print(f"bad sweep grid: {exc}", file=sys.stderr)
        return 2
    every_days = args.checkpoint_every
    if args.checkpoint_dir is not None and every_days is None:
        every_days = 1.0
    on_record = None
    progress_handle = None
    if args.progress_out is not None:
        directory = os.path.dirname(os.path.abspath(args.progress_out))
        os.makedirs(directory, exist_ok=True)
        progress_handle = open(args.progress_out, "a", encoding="utf-8")

        def on_record(record) -> None:
            # One NDJSON line per finished cell, flushed immediately so
            # a live tail (repro serve, tail -f) sees it right away.
            progress_handle.write(
                json.dumps(record.to_dict(), sort_keys=True) + "\n"
            )
            progress_handle.flush()

    if args.trace_dir is not None:
        os.makedirs(args.trace_dir, exist_ok=True)
    server = transport = None
    if args.dist_listen is not None:
        try:
            server, transport = _start_dist_server(
                args.dist_listen, args.min_workers
            )
        except (ConfigurationError, OSError) as exc:
            print(f"cannot listen for workers: {exc}", file=sys.stderr)
            return 2
    _interrupt.install()
    try:
        result = run_sweep(
            points,
            engine=engine,
            workers=args.workers,
            timeout_s=args.timeout_s,
            max_retries=args.max_retries,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every_s=(
                None if every_days is None else every_days * SECONDS_PER_DAY
            ),
            existing=existing,
            spec=spec,
            on_record=on_record,
            trace_dir=args.trace_dir,
            transport=transport,
        )
    finally:
        if server is not None:
            server.shutdown()
        if progress_handle is not None:
            progress_handle.close()
    if out is not None:
        result.write(out)
    if args.as_json:
        print(json.dumps(result.to_dict(), sort_keys=True))
    else:
        print(summarize(result))
        if out is not None:
            print(f"sweep manifest written to {out}")
    if result.interrupted:
        return interrupt_exit_code()
    return 1 if result.error_count else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import run_service

    return run_service(
        host=args.host,
        port=args.port,
        data_dir=args.data_dir,
        max_parallel=args.max_parallel,
        checkpoint_every_days=args.checkpoint_every,
        max_queued=args.max_queued,
    )


def _cmd_worker(args: argparse.Namespace) -> int:
    from .dist import run_worker

    try:
        return run_worker(
            args.connect,
            name=args.name,
            slots=args.slots,
            heartbeat_s=args.heartbeat_s,
            reconnect_for_s=args.reconnect_for_s,
            expect_config_hash=args.expect_config_hash,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2


def _cmd_replicates(args: argparse.Namespace) -> int:
    from .experiments.statistics import compare_lifespans, run_replicates

    base = SimulationConfig(
        node_count=args.nodes, duration_s=args.days * SECONDS_PER_DAY
    )
    seeds = tuple(range(1, args.seeds + 1))
    print(f"running {args.seeds} seeds × 2 policies …")
    lorawan = run_replicates(base.as_lorawan(), seeds)
    h_theta = run_replicates(base.as_h(args.theta), seeds)
    for name, summary in (("LoRaWAN", lorawan), (f"H-{round(args.theta * 100)}", h_theta)):
        lifespan = summary.metric("lifespan_days")
        prr = summary.metric("avg_prr")
        print(f"{name:8s} lifespan {lifespan.mean:7.0f} ± {lifespan.half_width_95:5.0f} d"
              f"   PRR {prr.mean:.4f} ± {prr.half_width_95:.4f}")
    gain = compare_lifespans(lorawan, h_theta)
    print(
        f"paired lifespan gain: +{gain.mean * 100:.1f}% "
        f"± {gain.half_width_95 * 100:.1f}% (95% CI, paper: +69.7%)"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "resume":
        return _cmd_resume(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "worker":
        return _cmd_worker(args)
    return _cmd_replicates(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
