"""The live telemetry plane: ``repro serve``.

A dependency-free asyncio HTTP service that accepts simulate/sweep
specs, executes them as ordinary CLI subprocesses (results byte-
identical to ``repro sweep`` by construction), and makes every run
observable while it executes:

* ``/metrics`` — Prometheus text exposition merging service gauges,
  per-run RSS and checkpoint-derived progress fractions, sweep-wide
  per-cell families (:class:`~repro.service.aggregate.SweepAggregator`),
  and finished runs' own metric registries;
* ``/runs/{id}/events`` — live NDJSON stream of TraceBus events;
* ``/runs`` control plane — submit, inspect, cancel (SIGTERM onto the
  rescue-checkpoint path, so ``--resume`` semantics are preserved).

Protocol details in docs/SERVICE.md.
"""

from .aggregate import SweepAggregator, ingest_metrics_export
from .app import ServiceApp, run_service
from .http import HttpError, HttpServer, Request, Response, Router
from .jobs import Job, JobManager, validate_spec
from .resources import ResourceSampler, process_tree_rss_kb, rss_kb

__all__ = [
    "HttpError",
    "HttpServer",
    "Job",
    "JobManager",
    "Request",
    "Response",
    "ResourceSampler",
    "Router",
    "ServiceApp",
    "SweepAggregator",
    "ingest_metrics_export",
    "process_tree_rss_kb",
    "rss_kb",
    "run_service",
    "validate_spec",
]
