"""A dependency-free asyncio HTTP/1.1 server core.

``repro serve`` deliberately runs on the stdlib only — the container
the reproduction ships in has no web framework, and the service needs
exactly four things a framework would give it: request parsing, path
routing with ``{param}`` captures, JSON responses, and **streaming**
responses (chunked transfer encoding) for the NDJSON event tail.  This
module provides those four and nothing else.

Connections are short-lived (``Connection: close``) — scrape and
control-plane traffic is low-rate, and the one long-lived endpoint
(``/runs/{id}/events``) holds its connection open by streaming, not by
keep-alive.  Limits are enforced while *parsing* (header block and body
size) so a misbehaving client cannot balloon memory.
"""

from __future__ import annotations

import asyncio
import json
import traceback
from dataclasses import dataclass, field
from typing import (
    AsyncIterator,
    Awaitable,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
    Union,
)
from urllib.parse import parse_qs, unquote, urlsplit

#: Parser guards: a request line + headers block / body larger than
#: this is rejected before it is buffered any further.
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class HttpError(Exception):
    """Turn into an error response instead of a connection drop."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, List[str]]
    headers: Dict[str, str]
    body: bytes
    #: ``{param}`` captures filled in by the router.
    params: Dict[str, str] = field(default_factory=dict)

    def json(self) -> object:
        """The body parsed as JSON (400 on malformed/empty bodies)."""
        if not self.body:
            raise HttpError(400, "expected a JSON body")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"malformed JSON body: {exc}") from exc

    def query_get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """First value of a query parameter, or ``default``."""
        values = self.query.get(name)
        return values[0] if values else default

    def query_list(self, name: str) -> List[str]:
        """Every value of a (repeatable or comma-separated) parameter."""
        out: List[str] = []
        for value in self.query.get(name, []):
            out.extend(v for v in value.split(",") if v)
        return out


@dataclass
class Response:
    """One response: a complete body or a streaming chunk iterator."""

    status: int = 200
    body: Union[bytes, str] = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)
    #: When set, the body is ignored and chunks are streamed with
    #: chunked transfer encoding until the iterator ends.
    stream: Optional[AsyncIterator[bytes]] = None

    @classmethod
    def json(cls, payload: object, status: int = 200) -> "Response":
        """A JSON document response."""
        return cls(
            status=status,
            body=json.dumps(payload, sort_keys=True, indent=2) + "\n",
        )

    @classmethod
    def text(cls, body: str, status: int = 200, content_type: str = "text/plain; charset=utf-8") -> "Response":
        """A plain-text response (``/metrics`` exposition)."""
        return cls(status=status, body=body, content_type=content_type)

    @classmethod
    def error(cls, status: int, message: str) -> "Response":
        """The uniform error document."""
        return cls.json({"error": message, "status": status}, status=status)


Handler = Callable[[Request], Awaitable[Response]]


class Router:
    """Method + path-pattern dispatch with ``{param}`` captures."""

    def __init__(self) -> None:
        self._routes: List[Tuple[str, Tuple[str, ...], Handler]] = []

    def route(self, method: str, pattern: str, handler: Handler) -> None:
        """Register ``handler`` for ``method`` on ``pattern``.

        Patterns are slash-separated literals and ``{name}`` captures,
        e.g. ``/runs/{id}/events``.
        """
        segments = tuple(seg for seg in pattern.split("/") if seg)
        self._routes.append((method.upper(), segments, handler))

    def resolve(
        self, method: str, path: str
    ) -> Tuple[Optional[Handler], Dict[str, str], Optional[int]]:
        """Match a request; returns (handler, params, error_status)."""
        segments = [unquote(seg) for seg in path.split("/") if seg]
        path_matched = False
        for route_method, pattern, handler in self._routes:
            params = _match(pattern, segments)
            if params is None:
                continue
            path_matched = True
            if route_method == method.upper():
                return handler, params, None
        if path_matched:
            return None, {}, 405
        return None, {}, 404


def _match(
    pattern: Tuple[str, ...], segments: List[str]
) -> Optional[Dict[str, str]]:
    if len(pattern) != len(segments):
        return None
    params: Dict[str, str] = {}
    for expected, actual in zip(pattern, segments):
        if expected.startswith("{") and expected.endswith("}"):
            params[expected[1:-1]] = actual
        elif expected != actual:
            return None
    return params


async def _read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the wire; None on clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # client closed without sending a request
        raise HttpError(400, "truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(413, "request head too large") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    request_line = lines[0].split(" ")
    if len(request_line) != 3:
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target, _version = request_line
    parts = urlsplit(target)
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError as exc:
            raise HttpError(400, "bad Content-Length") from exc
        if length > MAX_BODY_BYTES:
            raise HttpError(413, "request body too large")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise HttpError(400, "truncated request body") from exc
    return Request(
        method=method.upper(),
        path=parts.path,
        query=parse_qs(parts.query),
        headers=headers,
        body=body,
    )


def _head_bytes(response: Response, chunked: bool) -> bytes:
    reason = _REASONS.get(response.status, "Unknown")
    headers = dict(response.headers)
    headers.setdefault("Content-Type", response.content_type)
    headers["Connection"] = "close"
    if chunked:
        headers["Transfer-Encoding"] = "chunked"
    else:
        body = response.body
        length = len(body.encode("utf-8") if isinstance(body, str) else body)
        headers["Content-Length"] = str(length)
    lines = [f"HTTP/1.1 {response.status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def _write_response(
    writer: asyncio.StreamWriter, response: Response
) -> None:
    if response.stream is None:
        writer.write(_head_bytes(response, chunked=False))
        body = response.body
        writer.write(body.encode("utf-8") if isinstance(body, str) else body)
        await writer.drain()
        return
    writer.write(_head_bytes(response, chunked=True))
    await writer.drain()
    try:
        async for chunk in response.stream:
            if not chunk:
                continue
            writer.write(f"{len(chunk):x}\r\n".encode("ascii"))
            writer.write(chunk)
            writer.write(b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()
    finally:
        closer = getattr(response.stream, "aclose", None)
        if closer is not None:
            try:
                await closer()
            except Exception:  # pragma: no cover - generator teardown
                pass


class HttpServer:
    """Binds a :class:`Router` to an ``asyncio.start_server`` socket."""

    def __init__(self, router: Router) -> None:
        self.router = router
        self._server: Optional[asyncio.AbstractServer] = None
        self.port: Optional[int] = None

    async def start(self, host: str, port: int) -> int:
        """Bind and start serving; returns the actual bound port."""
        self._server = await asyncio.start_server(
            self._handle, host=host, port=port, limit=MAX_HEADER_BYTES
        )
        sockets = self._server.sockets or []
        self.port = sockets[0].getsockname()[1] if sockets else port
        return self.port

    async def stop(self) -> None:
        """Stop accepting connections and close the listener."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await _read_request(reader)
            except HttpError as exc:
                await _write_response(
                    writer, Response.error(exc.status, exc.message)
                )
                return
            if request is None:
                return
            response = await self._dispatch(request)
            try:
                await _write_response(writer, response)
            except (ConnectionResetError, BrokenPipeError):
                pass  # client went away mid-stream; nothing to salvage
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _dispatch(self, request: Request) -> Response:
        handler, params, error = self.router.resolve(
            request.method, request.path
        )
        if handler is None:
            if error == 405:
                return Response.error(405, f"method {request.method} not allowed")
            return Response.error(404, f"no route for {request.path}")
        request.params = params
        try:
            return await handler(request)
        except HttpError as exc:
            return Response.error(exc.status, exc.message)
        except Exception:
            return Response.error(
                500, "internal error:\n" + traceback.format_exc()
            )
