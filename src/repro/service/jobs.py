"""Run lifecycle management for ``repro serve``.

Submitted specs become **subprocesses** running the ordinary CLI
(``python -m repro sweep …`` / ``python -m repro simulate …``) — by
construction their artifacts are byte-identical to what the CLI writes,
the service process is isolated from simulation crashes, and *cancel*
is exactly the CLI's SIGTERM story: the sweep parent salvages a partial
``SWEEP.json`` plus rescue checkpoints, so a later resubmission (or the
manager's own respawn) picks up with ``--resume`` and loses no
completed cells.

Each run owns a directory under ``<data_dir>/runs/<run-id>/``::

    spec.json        the submitted spec, verbatim
    state.json       manager-side lifecycle facts (atomic rewrites)
    SWEEP.json       the sweep report (repro.sweep/2), once available
    progress.ndjson  one record per finished cell, appended live
    traces/          per-cell run_<index>.jsonl event sinks
    checkpoints/     per-cell checkpoint directories
    stdout.log / stderr.log

Exit codes map to final states: ``0`` → completed, ``1`` from a sweep →
completed-with-errors (some cells failed but the report is valid),
``128+signum`` → cancelled when we sent the signal, interrupted when
someone else did; anything else → failed.
"""

from __future__ import annotations

import asyncio
import os
import re
import shutil
import signal
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..ioutil import atomic_write_json
from ..sweep.spec import SPEC_KEYS, grid_size, spec_duration_s
from .http import HttpError

#: States a run moves through (terminal ones after ``running``).
STATES = (
    "queued",
    "running",
    "completed",
    "completed-with-errors",
    "cancelled",
    "interrupted",
    "failed",
)

_SIMULATE_KEYS = frozenset(
    {
        "kind",
        "nodes",
        "days",
        "gateways",
        "policy",
        "theta",
        "seed",
        "engine",
        "trace",
        "memory_profile",
        "sample_nodes",
        "shards",
        "dist",
    }
)
_SWEEP_KEYS = frozenset(
    {"kind", "engine", "trace", "workers", "timeout_s", "max_retries", "dist"}
    | set(SPEC_KEYS)
)
_POLICIES = ("lorawan", "h", "hc")
_ENGINES = ("meso", "exact")


def _validate_dist(spec: Dict[str, object], out: Dict[str, object]) -> None:
    """Validate a spec's optional ``dist`` block into ``out``.

    The block mirrors the CLI's distributed flags: ``listen`` becomes
    ``--dist-listen`` and ``min_workers`` becomes ``--min-workers`` on
    the run subprocess, which then waits for that many ``repro worker``
    agents to dial in before simulating.
    """
    dist = spec.get("dist")
    if dist is None:
        return
    if not isinstance(dist, dict):
        raise HttpError(400, "dist must be an object")
    unknown = sorted(set(dist) - {"listen", "min_workers"})
    if unknown:
        raise HttpError(400, f"unknown dist keys: {unknown}")
    listen = dist.get("listen", "127.0.0.1:0")
    host, _, port_text = str(listen).rpartition(":")
    if not isinstance(listen, str) or not host or not port_text.isdigit():
        raise HttpError(400, f"dist.listen must be 'host:port', got {listen!r}")
    try:
        min_workers = int(dist.get("min_workers", 1))  # type: ignore[arg-type]
    except (TypeError, ValueError) as exc:
        raise HttpError(
            400, f"bad dist.min_workers: {dist.get('min_workers')!r}"
        ) from exc
    if min_workers < 1:
        raise HttpError(400, "dist.min_workers must be >= 1")
    if out.get("shards") is None:
        raise HttpError(400, "dist requires shards")
    if out.get("engine") != "meso":
        raise HttpError(400, "dist requires the meso engine")
    out["dist"] = {"listen": listen, "min_workers": min_workers}


def validate_spec(spec: object) -> Dict[str, object]:
    """Check a submitted spec; returns it normalized or raises 400."""
    if not isinstance(spec, dict):
        raise HttpError(400, "spec must be a JSON object")
    kind = spec.get("kind", "sweep")
    if kind not in ("sweep", "simulate"):
        raise HttpError(400, f"unknown kind {kind!r} (sweep or simulate)")
    allowed = _SWEEP_KEYS if kind == "sweep" else _SIMULATE_KEYS
    unknown = sorted(set(spec) - allowed)
    if unknown:
        raise HttpError(400, f"unknown spec keys for {kind}: {unknown}")
    out: Dict[str, object] = {"kind": kind}
    for key, caster, default in (
        ("nodes", int, 30),
        ("days", float, 5.0),
        ("gateways", int, 1),
        ("theta", float, 0.5),
    ):
        try:
            out[key] = caster(spec.get(key, default))  # type: ignore[arg-type]
        except (TypeError, ValueError) as exc:
            raise HttpError(400, f"bad {key!r}: {spec.get(key)!r}") from exc
    engine = spec.get("engine", "meso")
    if engine not in _ENGINES:
        raise HttpError(400, f"unknown engine {engine!r}")
    out["engine"] = engine
    out["trace"] = bool(spec.get("trace", False))
    profile = spec.get("memory_profile", "exact")
    if profile not in ("exact", "diet"):
        raise HttpError(
            400, f"unknown memory_profile {profile!r} (exact or diet)"
        )
    out["memory_profile"] = profile
    shards = spec.get("shards")
    if shards is not None:
        try:
            out["shards"] = int(shards)
        except (TypeError, ValueError) as exc:
            raise HttpError(400, f"bad 'shards': {shards!r}") from exc
        if out["shards"] < 1:  # type: ignore[operator]
            raise HttpError(400, "shards must be >= 1")
    sample_nodes = spec.get("sample_nodes")
    if sample_nodes is not None:
        if isinstance(sample_nodes, str):
            sample_nodes = [s for s in sample_nodes.split(",") if s.strip()]
        if not isinstance(sample_nodes, list):
            raise HttpError(400, "sample_nodes must be a list of node ids")
        try:
            out["sample_nodes"] = [int(s) for s in sample_nodes]
        except (TypeError, ValueError) as exc:
            raise HttpError(
                400, f"bad 'sample_nodes': {spec.get('sample_nodes')!r}"
            ) from exc
    if kind == "simulate":
        policy = spec.get("policy", "h")
        if policy not in _POLICIES:
            raise HttpError(400, f"unknown policy {policy!r}")
        out["policy"] = policy
        try:
            out["seed"] = int(spec.get("seed", 1))  # type: ignore[arg-type]
        except (TypeError, ValueError) as exc:
            raise HttpError(400, f"bad 'seed': {spec.get('seed')!r}") from exc
        _validate_dist(spec, out)
        return out
    policies = spec.get("policies", ["h"])
    if isinstance(policies, str):
        policies = [p for p in policies.split(",") if p]
    if not isinstance(policies, list) or not policies:
        raise HttpError(400, "policies must be a non-empty list")
    bad = [p for p in policies if p not in _POLICIES]
    if bad:
        raise HttpError(400, f"unknown policies {bad}")
    out["policies"] = list(policies)
    seed_list = spec.get("seed_list")
    if seed_list is not None:
        if isinstance(seed_list, str):
            seed_list = [s for s in seed_list.split(",") if s]
        try:
            out["seed_list"] = [int(s) for s in seed_list]  # type: ignore[union-attr]
        except (TypeError, ValueError) as exc:
            raise HttpError(400, f"bad 'seed_list': {spec.get('seed_list')!r}") from exc
        if not out["seed_list"]:
            raise HttpError(400, "seed_list must be non-empty")
    else:
        try:
            out["seeds"] = int(spec.get("seeds", 3))  # type: ignore[arg-type]
        except (TypeError, ValueError) as exc:
            raise HttpError(400, f"bad 'seeds': {spec.get('seeds')!r}") from exc
        if out["seeds"] < 1:  # type: ignore[operator]
            raise HttpError(400, "seeds must be >= 1")
    axis = spec.get("axis")
    if axis is not None:
        if isinstance(axis, str):
            axis = [axis]
        if not isinstance(axis, list) or not all(
            isinstance(a, str) and "=" in a for a in axis
        ):
            raise HttpError(400, "axis must be a list of 'FIELD=V1,V2,…' strings")
        out["axis"] = list(axis)
    for key, caster in (
        ("workers", int),
        ("max_retries", int),
        ("timeout_s", float),
    ):
        if spec.get(key) is not None:
            try:
                out[key] = caster(spec[key])  # type: ignore[arg-type]
            except (TypeError, ValueError) as exc:
                raise HttpError(400, f"bad {key!r}: {spec[key]!r}") from exc
    _validate_dist(spec, out)
    if "dist" in out and (
        int(out.get("workers", 1) or 1) > 1 or out.get("timeout_s") is not None
    ):
        raise HttpError(400, "dist is incompatible with workers > 1 or timeout_s")
    cells = grid_size(out)
    if not cells:
        raise HttpError(400, "spec expands to an empty or invalid grid")
    return out


@dataclass
class Job:
    """One submitted run and everything the service knows about it."""

    run_id: str
    spec: Dict[str, object]
    directory: str
    state: str = "queued"
    created_s: float = field(default_factory=time.time)
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    exit_code: Optional[int] = None
    pid: Optional[int] = None
    cancel_requested: bool = False
    #: How many times the manager spawned a subprocess for this run
    #: (>1 after a service restart resumed a salvaged sweep).
    spawn_count: int = 0
    process: Optional[asyncio.subprocess.Process] = None

    @property
    def kind(self) -> str:
        return str(self.spec.get("kind", "sweep"))

    @property
    def total_cells(self) -> int:
        if self.kind == "simulate":
            return 1
        return grid_size(self.spec) or 0

    @property
    def duration_s(self) -> float:
        return spec_duration_s(self.spec)

    def path(self, *parts: str) -> str:
        return os.path.join(self.directory, *parts)

    def to_dict(self) -> Dict[str, object]:
        return {
            "run_id": self.run_id,
            "kind": self.kind,
            "state": self.state,
            "spec": self.spec,
            "created_s": self.created_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
            "exit_code": self.exit_code,
            "pid": self.pid,
            "cancel_requested": self.cancel_requested,
            "spawn_count": self.spawn_count,
            "total_cells": self.total_cells,
        }


_RUN_ID_RE = re.compile(r"^run-(\d{4,})$")


class JobManager:
    """Queue, spawn, observe, and cancel run subprocesses."""

    def __init__(
        self,
        data_dir: str,
        max_parallel: int = 1,
        checkpoint_every_days: float = 1.0,
        max_queued: Optional[int] = None,
    ) -> None:
        self.data_dir = data_dir
        self.runs_dir = os.path.join(data_dir, "runs")
        self.max_parallel = max(1, int(max_parallel))
        self.max_queued = None if max_queued is None else max(0, int(max_queued))
        self.checkpoint_every_days = float(checkpoint_every_days)
        self.jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._next_index = 1
        self._waiters: List[asyncio.Task] = []
        self._closing = False
        os.makedirs(self.runs_dir, exist_ok=True)
        self._adopt_existing()

    # ------------------------------------------------------------ inventory

    def _adopt_existing(self) -> None:
        """Pick up run directories left by a previous service process.

        Their subprocesses are gone (or orphaned), so anything recorded
        as queued/running is re-queued — a salvaged ``SWEEP.json`` makes
        the respawn a ``--resume``, preserving completed cells.
        """
        import json

        for name in sorted(os.listdir(self.runs_dir)):
            match = _RUN_ID_RE.match(name)
            if match is None:
                continue
            self._next_index = max(self._next_index, int(match.group(1)) + 1)
            directory = os.path.join(self.runs_dir, name)
            spec_path = os.path.join(directory, "spec.json")
            state_path = os.path.join(directory, "state.json")
            try:
                with open(spec_path, "r", encoding="utf-8") as handle:
                    spec = json.load(handle)
            except (OSError, ValueError):
                continue
            job = Job(run_id=name, spec=spec, directory=directory)
            try:
                with open(state_path, "r", encoding="utf-8") as handle:
                    state = json.load(handle)
                job.state = str(state.get("state", "queued"))
                job.created_s = float(state.get("created_s", job.created_s))
                job.started_s = state.get("started_s")
                job.finished_s = state.get("finished_s")
                job.exit_code = state.get("exit_code")
                job.spawn_count = int(state.get("spawn_count", 0))
            except (OSError, ValueError):
                pass
            # queued/running: the old process is gone, start over.
            # interrupted: the shutdown (or an external signal) stopped
            # it mid-flight — a salvaged SWEEP.json makes the respawn a
            # --resume.  Cancelled runs stay cancelled: that was a user
            # decision, not a process fact.
            if job.state in ("queued", "running", "interrupted"):
                job.state = "queued"
                job.pid = None
            self.jobs[name] = job
            self._order.append(name)

    def list(self) -> List[Job]:
        return [self.jobs[run_id] for run_id in self._order]

    def get(self, run_id: str) -> Job:
        job = self.jobs.get(run_id)
        if job is None:
            raise HttpError(404, f"no run {run_id!r}")
        return job

    def running(self) -> List[Job]:
        return [job for job in self.jobs.values() if job.state == "running"]

    def queue_depth(self) -> int:
        return sum(1 for job in self.jobs.values() if job.state == "queued")

    # ----------------------------------------------------------- lifecycle

    def submit(self, spec: object) -> Job:
        """Validate, persist, and enqueue a run; pumps the queue."""
        if self._closing:
            raise HttpError(409, "service is shutting down")
        normalized = validate_spec(spec)
        if (
            self.max_queued is not None
            and self.queue_depth() >= self.max_queued
            and len(self.running()) >= self.max_parallel
        ):
            # The submission would have to wait behind a full queue:
            # backpressure, not acceptance.  A submit that would start
            # immediately (spare run capacity) is never refused.
            raise HttpError(
                429,
                f"submission queue is full ({self.queue_depth()} queued, "
                f"limit {self.max_queued}); retry after a run finishes",
            )
        run_id = f"run-{self._next_index:04d}"
        self._next_index += 1
        directory = os.path.join(self.runs_dir, run_id)
        os.makedirs(directory, exist_ok=True)
        job = Job(run_id=run_id, spec=normalized, directory=directory)
        atomic_write_json(job.path("spec.json"), normalized)
        self.jobs[run_id] = job
        self._order.append(run_id)
        self._persist(job)
        self.pump()
        return job

    def pump(self) -> None:
        """Start queued jobs while capacity allows."""
        if self._closing:
            return
        active = len(self.running())
        for run_id in self._order:
            if active >= self.max_parallel:
                break
            job = self.jobs[run_id]
            if job.state != "queued":
                continue
            self._spawn(job)
            active += 1

    def _spawn(self, job: Job) -> None:
        job.state = "running"
        job.started_s = time.time()
        job.spawn_count += 1
        job.exit_code = None
        self._persist(job)
        self._waiters.append(asyncio.get_event_loop().create_task(self._run(job)))

    def _argv(self, job: Job) -> List[str]:
        spec = job.spec
        argv = [sys.executable, "-m", "repro", job.kind]
        argv += ["--nodes", str(spec["nodes"]), "--days", str(spec["days"])]
        argv += ["--theta", str(spec["theta"]), "--engine", str(spec["engine"])]
        if spec.get("gateways") is not None:
            argv += ["--gateways", str(spec["gateways"])]
        if spec.get("memory_profile", "exact") != "exact":
            argv += ["--memory-profile", str(spec["memory_profile"])]
        if spec.get("shards") is not None:
            argv += ["--shards", str(spec["shards"])]
        dist = spec.get("dist")
        if isinstance(dist, dict):
            argv += ["--dist-listen", str(dist["listen"])]
            argv += ["--min-workers", str(dist["min_workers"])]
        if spec.get("sample_nodes"):
            argv += [
                "--sample-nodes",
                ",".join(str(n) for n in spec["sample_nodes"]),  # type: ignore[union-attr]
            ]
        if job.kind == "simulate":
            argv += ["--policy", str(spec["policy"]), "--seed", str(spec["seed"])]
            argv += ["--json", "--metrics-out", job.path("metrics.json")]
            argv += ["--manifest-out", job.path("manifest.json")]
            if spec.get("trace"):
                argv += ["--trace-out", job.path("trace.jsonl")]
            argv += ["--checkpoint-dir", job.path("checkpoints")]
            argv += ["--checkpoint-every", str(self.checkpoint_every_days)]
            return argv
        argv += ["--policies", ",".join(map(str, spec["policies"]))]  # type: ignore[arg-type]
        if spec.get("seed_list") is not None:
            argv += ["--seed-list", ",".join(map(str, spec["seed_list"]))]  # type: ignore[arg-type]
        else:
            argv += ["--seeds", str(spec["seeds"])]
        for axis in spec.get("axis") or []:  # type: ignore[union-attr]
            argv += ["--axis", str(axis)]
        if spec.get("workers") is not None:
            argv += ["--workers", str(spec["workers"])]
        if spec.get("timeout_s") is not None:
            argv += ["--timeout", str(spec["timeout_s"])]
        if spec.get("max_retries") is not None:
            argv += ["--max-retries", str(spec["max_retries"])]
        report = job.path("SWEEP.json")
        if os.path.exists(report):
            # A previous attempt salvaged a partial report — resume it
            # so completed cells are never re-run.
            argv += ["--resume", report]
        else:
            argv += ["--out", report]
        argv += ["--json", "--progress-out", job.path("progress.ndjson")]
        if spec.get("trace"):
            os.makedirs(job.path("traces"), exist_ok=True)
            argv += ["--trace-dir", job.path("traces")]
        argv += ["--checkpoint-dir", job.path("checkpoints")]
        argv += ["--checkpoint-every", str(self.checkpoint_every_days)]
        return argv

    @staticmethod
    def _child_env() -> Dict[str, str]:
        """Child env with the live ``repro`` package on PYTHONPATH."""
        import repro

        env = dict(os.environ)
        package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing
            else package_root + os.pathsep + existing
        )
        return env

    async def _run(self, job: Job) -> None:
        argv = self._argv(job)
        try:
            with open(job.path("stdout.log"), "ab") as out_handle, open(
                job.path("stderr.log"), "ab"
            ) as err_handle:
                process = await asyncio.create_subprocess_exec(
                    *argv,
                    stdout=out_handle,
                    stderr=err_handle,
                    env=self._child_env(),
                )
                job.process = process
                job.pid = process.pid
                self._persist(job)
                exit_code = await process.wait()
        except Exception:
            job.state = "failed"
            job.finished_s = time.time()
            job.process = None
            self._persist(job)
            self.pump()
            return
        job.exit_code = exit_code
        job.finished_s = time.time()
        job.process = None
        job.state = self._final_state(job, exit_code)
        self._persist(job)
        self.pump()

    def _final_state(self, job: Job, exit_code: int) -> str:
        if exit_code == 0:
            return "completed"
        if exit_code == 1 and job.kind == "sweep":
            return "completed-with-errors"
        # 128+signum is the CLI's graceful-stop convention; a negative
        # code means the signal landed before the handler was armed
        # (asyncio reports raw signal deaths as -signum).
        if exit_code >= 128 or exit_code < 0:
            return "cancelled" if job.cancel_requested else "interrupted"
        return "failed"

    def cancel(self, run_id: str) -> Job:
        """Cancel a queued run or SIGTERM a running one.

        The sweep parent's SIGTERM handler writes rescue checkpoints
        and salvages a partial report, so nothing completed is lost.
        """
        job = self.get(run_id)
        if job.state == "queued":
            job.cancel_requested = True
            job.state = "cancelled"
            job.finished_s = time.time()
            self._persist(job)
            return job
        if job.state != "running":
            raise HttpError(409, f"run {run_id} is {job.state}; nothing to cancel")
        job.cancel_requested = True
        self._persist(job)
        if job.pid is not None:
            try:
                os.kill(job.pid, signal.SIGTERM)
            except (ProcessLookupError, PermissionError):
                pass
        return job

    async def delete(
        self, run_id: str, cancel: bool = False, grace_s: float = 10.0
    ) -> Dict[str, object]:
        """Forget a run and remove its directory; returns its last facts.

        Running runs are refused (409) unless ``cancel`` is set, in
        which case they get the ordinary SIGTERM cancel path first and
        a SIGKILL if they outlive ``grace_s``.  Removal is atomic from
        the service's point of view: the directory is renamed to a
        dot-prefixed name (invisible to run adoption) before the
        recursive delete, so a crash mid-delete cannot resurrect a
        half-removed run.
        """
        job = self.get(run_id)
        if job.state == "running":
            if not cancel:
                raise HttpError(
                    409,
                    f"run {run_id} is running; pass ?cancel=1 to stop "
                    f"and delete it",
                )
            self.cancel(run_id)
            deadline = time.monotonic() + grace_s
            while job.state == "running" and time.monotonic() < deadline:
                await asyncio.sleep(0.1)
            if job.state == "running":
                if job.process is not None:
                    try:
                        job.process.kill()
                    except ProcessLookupError:
                        pass
                deadline = time.monotonic() + grace_s
                while job.state == "running" and time.monotonic() < deadline:
                    await asyncio.sleep(0.1)
        elif job.state == "queued":
            # Never spawned; flip it terminal so a concurrent pump()
            # cannot start it between forget and remove.
            job.state = "cancelled"
            job.finished_s = time.time()
        summary = job.to_dict()
        self.jobs.pop(run_id, None)
        try:
            self._order.remove(run_id)
        except ValueError:
            pass
        doomed = os.path.join(
            self.runs_dir, f".deleting-{job.run_id}-{os.getpid()}"
        )
        try:
            os.replace(job.directory, doomed)
        except FileNotFoundError:
            doomed = None
        except OSError:
            doomed = job.directory
        if doomed is not None:
            shutil.rmtree(doomed, ignore_errors=True)
        self.pump()
        return summary

    async def shutdown(self, grace_s: float = 20.0) -> None:
        """SIGTERM every running child and wait for waiters to settle."""
        self._closing = True
        for job in self.running():
            if job.pid is not None:
                try:
                    os.kill(job.pid, signal.SIGTERM)
                except (ProcessLookupError, PermissionError):
                    pass
        if self._waiters:
            done, pending = await asyncio.wait(
                self._waiters, timeout=grace_s
            )
            for task in pending:
                task.cancel()
            for job in self.running():
                if job.process is not None:
                    try:
                        job.process.kill()
                    except ProcessLookupError:
                        pass

    # ---------------------------------------------------------- persistence

    def _persist(self, job: Job) -> None:
        payload = job.to_dict()
        payload.pop("pid", None)
        try:
            atomic_write_json(job.path("state.json"), payload)
        except OSError:  # pragma: no cover - disk-full etc.
            pass
