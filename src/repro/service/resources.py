"""Process resource sampling for the service's ``/metrics`` endpoint.

The service reports its own resident-set size and, per submitted run,
the RSS of the subprocess *tree* executing that run (the ``repro
sweep`` parent plus its per-cell workers).  Linux exposes both through
``/proc``: ``VmRSS``/``VmHWM`` in ``/proc/<pid>/status`` and child
pids in ``/proc/<pid>/task/<tid>/children``.  On hosts without
``/proc`` the sampler degrades gracefully — ``getrusage`` still covers
the service's own peak, and per-child numbers come back as None.

:class:`ResourceSampler` additionally tracks the peak-of-samples per
key, so ``run_peak_rss_kb`` stays meaningful even where ``VmHWM`` is
unavailable (and keeps its high-water mark after the subprocess exits).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional


def _read_status_kb(pid: int, field: str) -> Optional[int]:
    """One ``kB`` field of ``/proc/<pid>/status``, or None."""
    try:
        with open(f"/proc/{pid}/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith(field + ":"):
                    parts = line.split()
                    if len(parts) >= 2 and parts[1].isdigit():
                        return int(parts[1])
    except OSError:
        pass
    return None


def rss_kb(pid: int) -> Optional[int]:
    """Current resident set size of ``pid`` in KiB (Linux /proc)."""
    return _read_status_kb(pid, "VmRSS")


def peak_rss_kb(pid: int) -> Optional[int]:
    """Kernel-tracked peak RSS of ``pid`` in KiB (Linux ``VmHWM``)."""
    return _read_status_kb(pid, "VmHWM")


def self_peak_rss_kb() -> Optional[int]:
    """This process's peak RSS in KiB, via /proc or ``getrusage``."""
    value = peak_rss_kb(os.getpid())
    if value is not None:
        return value
    try:
        import resource

        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except (ImportError, OSError):  # pragma: no cover - non-POSIX hosts
        return None


def child_pids(pid: int) -> List[int]:
    """Direct children of ``pid`` (Linux ``/proc/<pid>/task/*/children``)."""
    children: List[int] = []
    task_dir = f"/proc/{pid}/task"
    try:
        tids = os.listdir(task_dir)
    except OSError:
        return children
    for tid in tids:
        try:
            with open(
                f"{task_dir}/{tid}/children", "r", encoding="ascii"
            ) as handle:
                children.extend(
                    int(tok) for tok in handle.read().split() if tok.isdigit()
                )
        except OSError:
            continue
    return children


def process_tree_rss_kb(pid: int, max_depth: int = 4) -> Optional[int]:
    """Summed RSS (KiB) of ``pid`` and its descendants, or None.

    Depth-limited breadth-first walk; a pid that exits mid-walk simply
    stops contributing (sampling must never raise).
    """
    total: Optional[int] = None
    frontier = [pid]
    seen = set()
    for _ in range(max_depth + 1):
        next_frontier: List[int] = []
        for current in frontier:
            if current in seen:
                continue
            seen.add(current)
            value = rss_kb(current)
            if value is not None:
                total = (total or 0) + value
            next_frontier.extend(child_pids(current))
        if not next_frontier:
            break
        frontier = next_frontier
    return total


class ResourceSampler:
    """Keyed RSS sampling with peak-of-samples tracking.

    ``sample(key, pid)`` records the current subprocess-tree RSS under
    ``key`` and returns it; ``peak(key)`` is the highest value ever
    sampled for that key (surviving the process's exit).  Keys are run
    ids in the service.
    """

    def __init__(self) -> None:
        self._last: Dict[str, int] = {}
        self._peak: Dict[str, int] = {}

    def sample(self, key: str, pid: Optional[int]) -> Optional[int]:
        """Sample the tree rooted at ``pid``; updates the key's peak."""
        if pid is None:
            return self._last.get(key)
        value = process_tree_rss_kb(pid)
        if value is None:
            return self._last.get(key)
        self._last[key] = value
        if value > self._peak.get(key, 0):
            self._peak[key] = value
        return value

    def last(self, key: str) -> Optional[int]:
        """The most recent sample for ``key``."""
        return self._last.get(key)

    def peak(self, key: str) -> Optional[int]:
        """Highest RSS ever sampled for ``key``."""
        return self._peak.get(key)

    def forget(self, key: str) -> None:
        """Drop a key's samples (a deleted run)."""
        self._last.pop(key, None)
        self._peak.pop(key, None)
