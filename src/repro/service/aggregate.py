"""Sweep-wide metric aggregation for the service's ``/metrics`` scrape.

One scrape has to summarize an entire grid: the
:class:`SweepAggregator` keeps every per-cell :class:`RunRecord` dict it
has seen (fed live from each sweep's ``--progress-out`` NDJSON tail)
and folds them into labelled families on demand —

* ``repro_run_prr{run=…,cell=…,policy=…,seed=…}`` (and the other
  headline summary aggregates as ``repro_run_<name>``),
* ``repro_run_wall_s``, ``repro_run_peak_rss_kb``,
  ``repro_run_lifespan_days``, ``repro_run_attempts``,
* ``repro_sweep_cells{run=…,status=…}`` cell counts per final status.

Folding is idempotent (records are keyed by ``(run, cell)`` and gauges
are ``set()``), so re-reading a progress file from the start after a
truncation never double-counts.

:func:`ingest_metrics_export` merges a finished run's
``MetricsRegistry`` JSON export into the scrape registry under a
``run`` label — how a simulate run's full instrument set (histograms
included) appears on the service endpoint.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from ..obs.metrics import Histogram, MetricsRegistry

#: Summary keys surfaced as per-cell gauge families (name → metric
#: suffix).  PRR leads because it is the paper's headline metric.
_SUMMARY_FAMILIES: Tuple[Tuple[str, str, str], ...] = (
    ("avg_prr", "run_prr", "Per-cell packet reception ratio"),
    ("min_prr", "run_min_prr", "Per-cell minimum node PRR"),
    ("max_degradation", "run_max_degradation", "Per-cell max battery degradation"),
    ("mean_degradation", "run_mean_degradation", "Per-cell mean battery degradation"),
    ("total_tx_energy_j", "run_tx_energy_j", "Per-cell total TX energy (J)"),
)


class SweepAggregator:
    """Folds per-cell sweep records into sweep-wide labelled families."""

    def __init__(self) -> None:
        self._records: Dict[Tuple[str, int], Dict[str, object]] = {}

    def ingest(self, run_id: str, record: Mapping[str, object]) -> None:
        """Absorb one RunRecord dict (idempotent per ``(run, cell)``)."""
        try:
            index = int(record["index"])  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError):
            return
        self._records[(run_id, index)] = dict(record)

    def cell_count(self, run_id: str) -> int:
        """Cells ingested so far for one run."""
        return sum(1 for key in self._records if key[0] == run_id)

    def forget(self, run_id: str) -> None:
        """Drop every record of one run (the run was deleted)."""
        for key in [k for k in self._records if k[0] == run_id]:
            del self._records[key]

    def status_counts(self, run_id: str) -> Dict[str, int]:
        """Final-status histogram of one run's ingested cells."""
        counts: Dict[str, int] = {}
        for (rid, _), record in self._records.items():
            if rid != run_id:
                continue
            status = str(record.get("status", "unknown"))
            counts[status] = counts.get(status, 0) + 1
        return counts

    def completed_indices(self, run_id: str) -> Dict[int, bool]:
        """Cells of a run that already carry a final record."""
        return {
            index: True
            for (rid, index) in self._records
            if rid == run_id
        }

    def fold_into(self, registry: MetricsRegistry) -> None:
        """Render every ingested record into labelled gauge families."""
        status_counts: Dict[Tuple[str, str], int] = {}
        for (run_id, index), record in sorted(self._records.items()):
            status = str(record.get("status", "unknown"))
            status_counts[(run_id, status)] = (
                status_counts.get((run_id, status), 0) + 1
            )
            labels = {
                "run": run_id,
                "cell": str(index),
                "policy": str(record.get("policy", "")),
                "seed": str(record.get("seed", "")),
            }
            summary = record.get("summary")
            if isinstance(summary, Mapping):
                for key, family, help_text in _SUMMARY_FAMILIES:
                    value = summary.get(key)
                    if isinstance(value, (int, float)):
                        registry.gauge(family, help_text, labels=labels).set(
                            float(value)
                        )
            wall_s = record.get("wall_s")
            if isinstance(wall_s, (int, float)):
                registry.gauge(
                    "run_wall_s", "Per-cell wall-clock seconds", labels=labels
                ).set(float(wall_s))
            peak = record.get("peak_rss_kb")
            if isinstance(peak, (int, float)):
                registry.gauge(
                    "run_peak_rss_kb",
                    "Per-cell peak worker RSS (KiB)",
                    labels=labels,
                ).set(float(peak))
            lifespan = record.get("lifespan_days")
            if isinstance(lifespan, (int, float)):
                registry.gauge(
                    "run_lifespan_days",
                    "Per-cell extrapolated network lifespan (days)",
                    labels=labels,
                ).set(float(lifespan))
            attempts = record.get("attempts")
            if isinstance(attempts, (int, float)):
                registry.gauge(
                    "run_attempts",
                    "Attempts the cell needed (1 = clean first try)",
                    labels=labels,
                ).set(float(attempts))
        for (run_id, status), count in sorted(status_counts.items()):
            registry.gauge(
                "sweep_cells",
                "Sweep cells by final status",
                labels={"run": run_id, "status": status},
            ).set(float(count))


def ingest_metrics_export(
    registry: MetricsRegistry,
    export: Mapping[str, object],
    extra_labels: Optional[Mapping[str, str]] = None,
) -> int:
    """Merge a ``MetricsRegistry.to_json()`` document into ``registry``.

    Every instrument is re-created under its original name plus
    ``extra_labels`` (the service adds ``{run="<id>"}``), so several
    runs' exports coexist as one labelled family per metric.  Counter
    and gauge values are *set*; histograms are rebuilt bucket-for-bucket
    from the export's cumulative weights.  Returns the number of
    instruments merged; entries whose type collides with an existing
    registration are skipped rather than poisoning the scrape.
    """
    merged = 0
    entries = export.get("metrics")
    if not isinstance(entries, list):
        return merged
    for entry in entries:
        if not isinstance(entry, Mapping):
            continue
        name = str(entry.get("name", ""))
        kind = str(entry.get("kind", ""))
        if not name:
            continue
        labels = dict(entry.get("labels") or {})
        labels.update(extra_labels or {})
        try:
            if kind == "counter":
                value = float(entry.get("value", 0.0))  # type: ignore[arg-type]
                counter = registry.counter(name, labels=labels)
                if value > counter.value:
                    counter.inc(value - counter.value)
            elif kind == "gauge":
                registry.gauge(name, labels=labels).set(
                    float(entry.get("value", 0.0))  # type: ignore[arg-type]
                )
            elif kind == "histogram":
                buckets = entry.get("buckets")
                if not isinstance(buckets, Mapping):
                    continue
                bounds = [float(bound) for bound in buckets.keys()]
                histogram = registry.histogram(
                    name, buckets=sorted(bounds), labels=labels
                )
                _load_histogram(histogram, buckets, entry)
            else:
                continue
        except Exception:
            # A colliding registration (same name, different kind) or a
            # malformed entry must not take the whole scrape down.
            continue
        merged += 1
    return merged


def _load_histogram(
    histogram: Histogram,
    buckets: Mapping[str, object],
    entry: Mapping[str, object],
) -> None:
    """Restore a histogram's internals from cumulative export weights."""
    cumulative = [float(buckets[f"{bound:g}"]) for bound in histogram.bounds]  # type: ignore[index]
    weights = []
    previous = 0.0
    for value in cumulative:
        weights.append(max(0.0, value - previous))
        previous = value
    histogram._bucket_weights = weights
    histogram.sum = float(entry.get("sum", 0.0))  # type: ignore[arg-type]
    histogram.count = float(entry.get("count", 0.0))  # type: ignore[arg-type]
