"""The ``repro serve`` application: routes, scrape assembly, lifecycle.

Endpoint map (all JSON unless noted)::

    GET  /                     service index (endpoints, counts)
    GET  /healthz              liveness probe
    GET  /metrics              Prometheus text exposition (scrape)
    GET  /runs                 every submitted run, in submission order
    POST /runs                 submit a spec → 201 + the new run
    GET  /runs/{id}            status, progress, report/manifest digest
    POST /runs/{id}/cancel     SIGTERM the run (rescue-checkpoint path)
    DELETE /runs/{id}          forget the run, remove its directory
                               (running runs refused unless ?cancel=1)
    GET  /runs/{id}/events     NDJSON stream of TraceBus events
                               (?category=…&min_severity=…&since=…
                                &follow=1&limit=N — chunked, live)

One scrape (`/metrics`) is assembled fresh each time: service gauges,
per-run RSS from :class:`ResourceSampler`, per-run progress fractions
from checkpoint headers, the :class:`SweepAggregator`'s per-cell
families, and — for finished ``simulate`` runs — the run's own exported
``MetricsRegistry`` merged under a ``run`` label.
"""

from __future__ import annotations

import asyncio
import glob
import json
import os
import signal
from typing import AsyncIterator, Dict, List, Optional, Set

from ..checkpoint.progress import progress_fraction, sweep_progress_fraction
from ..ioutil import atomic_write_json
from ..obs.metrics import MetricsRegistry
from ..obs.tail import JsonlTailer, parse_event_line
from ..obs.trace import SEVERITIES
from .aggregate import SweepAggregator, ingest_metrics_export
from .http import HttpError, HttpServer, Request, Response, Router
from .jobs import Job, JobManager
from .resources import ResourceSampler, rss_kb, self_peak_rss_kb

_TERMINAL = ("completed", "completed-with-errors", "cancelled", "interrupted", "failed")


def _truthy(value: Optional[str]) -> bool:
    return (value or "").lower() in ("1", "true", "yes", "on")


class ServiceApp:
    """Wires the job manager, aggregator, and sampler into a router."""

    def __init__(
        self,
        data_dir: str,
        max_parallel: int = 1,
        checkpoint_every_days: float = 1.0,
        max_queued: Optional[int] = None,
    ) -> None:
        self.data_dir = data_dir
        self.manager = JobManager(
            data_dir,
            max_parallel=max_parallel,
            checkpoint_every_days=checkpoint_every_days,
            max_queued=max_queued,
        )
        self.aggregator = SweepAggregator()
        self.sampler = ResourceSampler()
        self._progress_tailers: Dict[str, JsonlTailer] = {}
        self._report_ingested: Set[str] = set()
        self._metrics_exports: Dict[str, Dict[str, object]] = {}
        self.router = Router()
        self.router.route("GET", "/", self.handle_index)
        self.router.route("GET", "/healthz", self.handle_healthz)
        self.router.route("GET", "/metrics", self.handle_metrics)
        self.router.route("GET", "/runs", self.handle_list_runs)
        self.router.route("POST", "/runs", self.handle_submit)
        self.router.route("GET", "/runs/{id}", self.handle_get_run)
        self.router.route("POST", "/runs/{id}/cancel", self.handle_cancel)
        self.router.route("DELETE", "/runs/{id}", self.handle_delete)
        self.router.route("GET", "/runs/{id}/events", self.handle_events)

    # ------------------------------------------------------------ ingestion

    def _pump_progress(self) -> None:
        """Tail every sweep's progress NDJSON into the aggregator.

        Idempotent by construction (the aggregator keys on ``(run,
        cell)``), and for runs that predate this service process — or
        whose progress file is gone — the final ``SWEEP.json`` records
        are folded in once instead.
        """
        for job in self.manager.list():
            if job.kind != "sweep":
                continue
            tailer = self._progress_tailers.get(job.run_id)
            if tailer is None:
                tailer = JsonlTailer(job.path("progress.ndjson"), from_start=True)
                self._progress_tailers[job.run_id] = tailer
            for line in tailer.poll():
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict):
                    self.aggregator.ingest(job.run_id, record)
            if job.state in _TERMINAL and job.run_id not in self._report_ingested:
                report = self._read_json(job.path("SWEEP.json"))
                if report is not None:
                    for record in report.get("runs", ()):
                        if isinstance(record, dict):
                            self.aggregator.ingest(job.run_id, record)
                    self._report_ingested.add(job.run_id)

    def _metrics_export_for(self, job: Job) -> Optional[Dict[str, object]]:
        """A finished simulate run's metrics export, loaded once."""
        if job.kind != "simulate" or job.state not in _TERMINAL:
            return None
        cached = self._metrics_exports.get(job.run_id)
        if cached is not None:
            return cached
        doc = self._read_json(job.path("metrics.json"))
        if doc is not None:
            self._metrics_exports[job.run_id] = doc
        return doc

    @staticmethod
    def _read_json(path: str) -> Optional[Dict[str, object]]:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                loaded = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        return loaded if isinstance(loaded, dict) else None

    def _job_progress(self, job: Job) -> Optional[float]:
        """Fraction of the run durably finished, in [0, 1]."""
        if job.state in ("completed", "completed-with-errors"):
            return 1.0
        if job.kind == "simulate":
            if job.state == "queued":
                return 0.0
            return progress_fraction(job.path("checkpoints"), job.duration_s)
        done = self.aggregator.completed_indices(job.run_id)
        return sweep_progress_fraction(
            job.path("checkpoints"),
            job.duration_s,
            job.total_cells,
            completed_cells=len(done),
            completed_indices=done,
        )

    # --------------------------------------------------------------- scrape

    def render_metrics(self) -> str:
        """Assemble one Prometheus exposition for the whole service."""
        self._pump_progress()
        registry = MetricsRegistry()
        registry.gauge(
            "service_active_runs", "Runs currently executing"
        ).set(float(len(self.manager.running())))
        registry.gauge(
            "service_queue_depth", "Runs queued behind the parallel limit"
        ).set(float(self.manager.queue_depth()))
        states: Dict[str, int] = {}
        for job in self.manager.list():
            states[job.state] = states.get(job.state, 0) + 1
        for state, count in sorted(states.items()):
            registry.gauge(
                "service_runs", "Submitted runs by state", labels={"state": state}
            ).set(float(count))
        own_rss = rss_kb(os.getpid())
        if own_rss is not None:
            registry.gauge(
                "process_resident_memory_kb", "Service process RSS (KiB)"
            ).set(float(own_rss))
        own_peak = self_peak_rss_kb()
        if own_peak is not None:
            registry.gauge(
                "process_peak_resident_memory_kb", "Service process peak RSS (KiB)"
            ).set(float(own_peak))
        for job in self.manager.list():
            labels = {"run": job.run_id}
            if job.state == "running":
                self.sampler.sample(job.run_id, job.pid)
            last = self.sampler.last(job.run_id)
            if last is not None:
                registry.gauge(
                    "run_rss_kb", "Run subprocess-tree RSS (KiB)", labels=labels
                ).set(float(last))
            peak = self.sampler.peak(job.run_id)
            if peak is not None:
                registry.gauge(
                    "run_peak_rss_kb_sampled",
                    "Peak-of-samples run subprocess-tree RSS (KiB)",
                    labels=labels,
                ).set(float(peak))
            fraction = self._job_progress(job)
            if fraction is not None:
                registry.gauge(
                    "run_progress_fraction",
                    "Fraction of the run durably finished (checkpoint-derived)",
                    labels=labels,
                ).set(fraction)
            export = self._metrics_export_for(job)
            if export is not None:
                ingest_metrics_export(registry, export, extra_labels=labels)
        self.aggregator.fold_into(registry)
        return registry.to_prometheus()

    # ------------------------------------------------------------- handlers

    async def handle_index(self, request: Request) -> Response:
        return Response.json(
            {
                "service": "repro",
                "endpoints": [
                    "GET /healthz",
                    "GET /metrics",
                    "GET /runs",
                    "POST /runs",
                    "GET /runs/{id}",
                    "POST /runs/{id}/cancel",
                    "DELETE /runs/{id}",
                    "GET /runs/{id}/events",
                ],
                "runs": len(self.manager.jobs),
                "active": len(self.manager.running()),
            }
        )

    async def handle_healthz(self, request: Request) -> Response:
        return Response.json({"ok": True})

    async def handle_metrics(self, request: Request) -> Response:
        return Response.text(
            self.render_metrics(),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    async def handle_list_runs(self, request: Request) -> Response:
        self._pump_progress()
        runs = []
        for job in self.manager.list():
            entry = job.to_dict()
            entry["cells_done"] = (
                self.aggregator.cell_count(job.run_id)
                if job.kind == "sweep"
                else (1 if job.state in ("completed",) else 0)
            )
            entry["progress_fraction"] = self._job_progress(job)
            runs.append(entry)
        return Response.json({"runs": runs})

    async def handle_submit(self, request: Request) -> Response:
        job = self.manager.submit(request.json())
        return Response.json(job.to_dict(), status=201)

    async def handle_get_run(self, request: Request) -> Response:
        self._pump_progress()
        job = self.manager.get(request.params["id"])
        payload = job.to_dict()
        payload["progress_fraction"] = self._job_progress(job)
        if job.kind == "sweep":
            payload["cells_done"] = self.aggregator.cell_count(job.run_id)
            payload["cell_status_counts"] = self.aggregator.status_counts(
                job.run_id
            )
            report = self._read_json(job.path("SWEEP.json"))
            if report is not None:
                payload["report"] = {
                    "schema": report.get("schema"),
                    "engine": report.get("engine"),
                    "interrupted": report.get("interrupted"),
                    "error_count": report.get("error_count"),
                    "attempts": [
                        {
                            key: record.get(key)
                            for key in (
                                "index",
                                "policy",
                                "seed",
                                "status",
                                "attempts",
                                "wall_s",
                                "peak_rss_kb",
                                "error",
                            )
                        }
                        for record in report.get("runs", ())
                        if isinstance(record, dict)
                    ],
                }
        else:
            manifest = self._read_json(job.path("manifest.json"))
            if manifest is not None:
                payload["manifest"] = manifest
        return Response.json(payload)

    async def handle_cancel(self, request: Request) -> Response:
        job = self.manager.cancel(request.params["id"])
        return Response.json(job.to_dict(), status=202)

    async def handle_delete(self, request: Request) -> Response:
        run_id = request.params["id"]
        summary = await self.manager.delete(
            run_id, cancel=_truthy(request.query_get("cancel"))
        )
        # Drop service-side caches so a future run reusing the id (after
        # a restart renumbers) cannot inherit stale progress or metrics.
        self._progress_tailers.pop(run_id, None)
        self._report_ingested.discard(run_id)
        self._metrics_exports.pop(run_id, None)
        self.aggregator.forget(run_id)
        self.sampler.forget(run_id)
        return Response.json({"deleted": run_id, "was": summary})

    async def handle_events(self, request: Request) -> Response:
        job = self.manager.get(request.params["id"])
        categories = set(request.query_list("category"))
        min_severity = request.query_get("min_severity")
        if min_severity is not None and min_severity not in SEVERITIES:
            raise HttpError(
                400,
                f"unknown min_severity {min_severity!r} "
                f"(one of {sorted(SEVERITIES)})",
            )
        min_level = SEVERITIES.get(min_severity or "", 0)
        since_text = request.query_get("since")
        try:
            since = float(since_text) if since_text is not None else None
        except ValueError as exc:
            raise HttpError(400, f"bad since {since_text!r}") from exc
        limit_text = request.query_get("limit")
        try:
            limit = int(limit_text) if limit_text is not None else None
        except ValueError as exc:
            raise HttpError(400, f"bad limit {limit_text!r}") from exc
        follow = _truthy(request.query_get("follow"))
        try:
            poll_s = float(request.query_get("poll", "0.2") or 0.2)
        except ValueError:
            poll_s = 0.2
        stream = self._event_stream(
            job,
            categories=categories,
            min_level=min_level,
            since=since,
            limit=limit,
            follow=follow,
            poll_s=max(0.05, poll_s),
        )
        return Response(content_type="application/x-ndjson", stream=stream)

    def _event_paths(self, job: Job) -> List[str]:
        if job.kind == "simulate":
            return [job.path("trace.jsonl")]
        return sorted(glob.glob(os.path.join(job.path("traces"), "run_*.jsonl")))

    async def _event_stream(
        self,
        job: Job,
        categories: Set[str],
        min_level: int,
        since: Optional[float],
        limit: Optional[int],
        follow: bool,
        poll_s: float,
    ) -> AsyncIterator[bytes]:
        """NDJSON event lines across the run's trace sinks.

        Each poll round re-globs the trace directory (a sweep opens new
        per-cell sinks as cells start) and drains every tailer.  In
        follow mode the stream ends when the run reaches a terminal
        state (after one final drain) or ``limit`` lines went out; a
        plain request ends after draining what is on disk now.
        """
        tailers: Dict[str, JsonlTailer] = {}
        emitted = 0
        while True:
            terminal = job.state in _TERMINAL
            drained_any = False
            for path in self._event_paths(job):
                tailer = tailers.get(path)
                if tailer is None:
                    tailer = JsonlTailer(path, from_start=True)
                    tailers[path] = tailer
                for line in tailer.poll():
                    drained_any = True
                    event = parse_event_line(line)
                    if event is None:
                        continue
                    if categories and event.category not in categories:
                        continue
                    if SEVERITIES.get(event.severity, 0) < min_level:
                        continue
                    if since is not None and event.time_s < since:
                        continue
                    yield (line + "\n").encode("utf-8")
                    emitted += 1
                    if limit is not None and emitted >= limit:
                        return
            if not follow:
                return
            if terminal and not drained_any:
                return
            await asyncio.sleep(poll_s)


def run_service(
    host: str = "127.0.0.1",
    port: int = 8321,
    data_dir: str = "repro-service",
    max_parallel: int = 1,
    checkpoint_every_days: float = 1.0,
    max_queued: Optional[int] = None,
) -> int:
    """Blocking entry point for ``repro serve``.

    Prints one parseable startup line (``repro service listening on
    http://HOST:PORT``) and records ``{host, port, pid}`` in
    ``<data_dir>/service.json`` so tooling can discover an ephemeral
    port (``--port 0``).  SIGTERM/SIGINT stop the listener, forward
    SIGTERM to running children (their rescue-checkpoint path), and
    exit 0.
    """

    async def _main() -> int:
        os.makedirs(data_dir, exist_ok=True)
        app = ServiceApp(
            data_dir,
            max_parallel=max_parallel,
            checkpoint_every_days=checkpoint_every_days,
            max_queued=max_queued,
        )
        server = HttpServer(app.router)
        bound = await server.start(host, port)
        atomic_write_json(
            os.path.join(data_dir, "service.json"),
            {"host": host, "port": bound, "pid": os.getpid()},
        )
        print(f"repro service listening on http://{host}:{bound}", flush=True)
        # Adopted runs (left queued/interrupted by a previous service
        # process) restart now that the loop is up.
        app.manager.pump()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                signal.signal(signum, lambda *_: stop.set())
        await stop.wait()
        print("repro service shutting down", flush=True)
        await server.stop()
        await app.manager.shutdown()
        return 0

    try:
        return asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - direct ^C race
        return 0
