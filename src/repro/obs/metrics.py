"""Run-level metrics: counters, gauges, and time-weighted histograms.

A :class:`MetricsRegistry` is the structured successor to the ad-hoc
``fault_*`` key plumbing: components register named instruments once and
update them in O(1); the registry renders a Prometheus-style text
exposition (``--metrics-out metrics.prom``) or a JSON document
(``--metrics-out metrics.json``) at the end of a run.

Instruments follow Prometheus conventions: ``*_total`` counters only go
up, gauges move freely, and histograms expose cumulative ``le`` buckets.
Histograms are *weighted*: ``observe(value, weight)`` lets callers
weight a sample by the simulated time it was held (a time-weighted SoC
histogram reads "joules-seconds below 0.4 SoC", not "number of
samples"), with ``weight=1`` recovering plain counting.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError

#: Registry key: metric name plus its sorted label pairs.
_MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _label_key(labels: Optional[Mapping[str, str]]) -> Tuple[Tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Prometheus text-format label-value escaping (v0.0.4)."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    """Prometheus text-format ``# HELP`` escaping (v0.0.4)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(value)}"' for key, value in labels
    )
    return "{" + inner + "}"


def _check_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ConfigurationError(
            f"invalid metric name {name!r}: use [a-zA-Z0-9_:] only"
        )
    return name


class Counter:
    """Monotonically increasing count (Prometheus ``counter``)."""

    kind = "counter"

    def __init__(
        self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None
    ) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labels = _label_key(labels)
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ConfigurationError("counters only go up")
        self.value += amount

    def samples(self) -> List[Tuple[str, Tuple[Tuple[str, str], ...], float]]:
        """(suffix, labels, value) exposition rows."""
        return [("", self.labels, self.value)]


class Gauge:
    """A value that can move both ways (Prometheus ``gauge``)."""

    kind = "gauge"

    def __init__(
        self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None
    ) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labels = _label_key(labels)
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` to the gauge."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        self.value -= amount

    def max(self, value: float) -> None:
        """Raise the gauge to ``value`` if it is higher (peak tracking)."""
        if value > self.value:
            self.value = float(value)

    def samples(self) -> List[Tuple[str, Tuple[Tuple[str, str], ...], float]]:
        """(suffix, labels, value) exposition rows."""
        return [("", self.labels, self.value)]


class Histogram:
    """Weighted histogram with Prometheus-style cumulative buckets.

    ``observe(value, weight)`` adds ``weight`` to every bucket whose
    upper bound is >= ``value``.  With duration weights this is a
    *time-weighted* histogram: the exposition reads "total weight spent
    at or below each bound".
    """

    kind = "histogram"

    DEFAULT_BUCKETS: Tuple[float, ...] = (
        0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    )

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labels = _label_key(labels)
        bounds = tuple(buckets) if buckets is not None else self.DEFAULT_BUCKETS
        if not bounds or list(bounds) != sorted(bounds):
            raise ConfigurationError("histogram buckets must be sorted and non-empty")
        self.bounds: Tuple[float, ...] = bounds
        self._bucket_weights: List[float] = [0.0] * len(bounds)
        self.sum: float = 0.0
        self.count: float = 0.0

    def observe(self, value: float, weight: float = 1.0) -> None:
        """Record ``value`` with the given weight (e.g. a duration)."""
        if weight < 0:
            raise ConfigurationError("histogram weights cannot be negative")
        index = bisect_left(self.bounds, value)
        if index < len(self._bucket_weights):
            self._bucket_weights[index] += weight
        self.sum += value * weight
        self.count += weight

    def bucket_weights(self) -> List[float]:
        """Cumulative weight at or below each bound (plus +Inf implicit)."""
        cumulative, total = [], 0.0
        for weight in self._bucket_weights:
            total += weight
            cumulative.append(total)
        return cumulative

    def samples(self) -> List[Tuple[str, Tuple[Tuple[str, str], ...], float]]:
        """(suffix, labels, value) exposition rows, Prometheus layout."""
        rows: List[Tuple[str, Tuple[Tuple[str, str], ...], float]] = []
        for bound, weight in zip(self.bounds, self.bucket_weights()):
            if math.isinf(bound):
                continue  # the +Inf row below covers it
            rows.append(("_bucket", self.labels + (("le", f"{bound:g}"),), weight))
        rows.append(("_bucket", self.labels + (("le", "+Inf"),), self.count))
        rows.append(("_sum", self.labels, self.sum))
        rows.append(("_count", self.labels, self.count))
        return rows


class MetricsRegistry:
    """Named instrument store with get-or-create semantics.

    Asking twice for the same (name, labels) returns the same instrument;
    asking for an existing name with a different instrument type is an
    error (it would silently fork the metric).
    """

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = _check_name(namespace) if namespace else ""
        self._metrics: Dict[_MetricKey, object] = {}
        self._helps: Dict[str, str] = {}
        self._kinds: Dict[str, str] = {}

    # -------------------------------------------------------------- creation

    def _qualify(self, name: str) -> str:
        if self.namespace and not name.startswith(self.namespace + "_"):
            return f"{self.namespace}_{name}"
        return name

    def _get_or_create(
        self,
        cls: type,
        name: str,
        help: str,
        labels: Optional[Mapping[str, str]],
        **kwargs: object,
    ) -> object:
        name = self._qualify(name)
        kind = cls.kind  # type: ignore[attr-defined]
        existing_kind = self._kinds.get(name)
        if existing_kind is not None and existing_kind != kind:
            raise ConfigurationError(
                f"metric {name!r} already registered as a {existing_kind}"
            )
        key: _MetricKey = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, help=help, labels=labels, **kwargs)
            self._metrics[key] = metric
            self._kinds[name] = kind
            if help and name not in self._helps:
                self._helps[name] = help
        return metric

    def counter(
        self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        """Get or create a counter."""
        return self._get_or_create(Counter, name, help, labels)  # type: ignore[return-value]

    def gauge(
        self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None
    ) -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(Gauge, name, help, labels)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        labels: Optional[Mapping[str, str]] = None,
    ) -> Histogram:
        """Get or create a (weighted) histogram."""
        return self._get_or_create(  # type: ignore[return-value]
            Histogram, name, help, labels, buckets=buckets
        )

    # ------------------------------------------------------------ inspection

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterable[object]:
        return iter(self._metrics.values())

    def get(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Optional[object]:
        """Look up an instrument without creating it."""
        return self._metrics.get((self._qualify(name), _label_key(labels)))

    # -------------------------------------------------------------- exports

    def to_prometheus(self) -> str:
        """Prometheus text exposition (v0.0.4 format)."""
        by_name: Dict[str, List[object]] = {}
        for (name, _), metric in sorted(self._metrics.items()):
            by_name.setdefault(name, []).append(metric)
        lines: List[str] = []
        for name, metrics in by_name.items():
            help_text = self._helps.get(name)
            if help_text:
                lines.append(f"# HELP {name} {_escape_help(help_text)}")
            lines.append(f"# TYPE {name} {self._kinds[name]}")
            for metric in metrics:
                for suffix, labels, value in metric.samples():  # type: ignore[attr-defined]
                    rendered = _render_labels(labels)
                    lines.append(f"{name}{suffix}{rendered} {value:g}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self) -> Dict[str, object]:
        """JSON document: one entry per (name, labels) instrument."""
        entries: List[Dict[str, object]] = []
        for (name, labels), metric in sorted(self._metrics.items()):
            entry: Dict[str, object] = {
                "name": name,
                "kind": self._kinds[name],
                "labels": dict(labels),
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = {
                    f"{bound:g}": weight
                    for bound, weight in zip(metric.bounds, metric.bucket_weights())
                }
                entry["sum"] = metric.sum
                entry["count"] = metric.count
            else:
                entry["value"] = metric.value  # type: ignore[attr-defined]
            entries.append(entry)
        return {"namespace": self.namespace, "metrics": entries}

    def to_json_text(self, indent: int = 2) -> str:
        """The JSON export, serialized."""
        return json.dumps(self.to_json(), indent=indent, sort_keys=True)

    def flat(self) -> Dict[str, float]:
        """``{rendered_name: value}`` for quick assertions and tables."""
        flat: Dict[str, float] = {}
        for (name, labels), metric in sorted(self._metrics.items()):
            for suffix, sample_labels, value in metric.samples():  # type: ignore[attr-defined]
                flat[f"{name}{suffix}{_render_labels(sample_labels)}"] = value
        return flat
