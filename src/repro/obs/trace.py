"""Structured event tracing for both simulation engines.

Aggregate metrics say *how the network did*; a trace says *what
happened, in order*.  Every instrumented component — the engines, the
battery lifespan-aware MAC, the degradation service, the battery model,
the software-defined switch, and the fault injector — publishes typed
:class:`TraceEvent` records onto one :class:`TraceBus` per run.  The bus
keeps a bounded ring buffer for in-process inspection and can stream
every retained event to a JSONL sink for offline analysis
(``repro trace`` pretty-prints and filters those files).

The design goal is **zero overhead when disabled**: components hold a
``None`` bus reference and guard every emission with a single ``is not
None`` check, so runs without tracing execute the exact pre-
instrumentation code path (and stay bit-identical for a given seed).
Hot-path events are emitted at DEBUG severity so a bus configured at
INFO skips them with one integer comparison.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Deque,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    TextIO,
    Tuple,
    Union,
)

from ..exceptions import ConfigurationError

#: Severity names in increasing order of importance.
SEVERITIES: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}

#: The event taxonomy (see docs/OBSERVABILITY.md for the full schema).
CATEGORIES: Tuple[str, ...] = (
    "packet",  # packet lifecycle: generated / attempt / finished / dropped
    "window",  # Algorithm 1 decisions with per-window DIF/utility scores
    "energy",  # software-defined-switch events (brown-outs)
    "battery",  # degradation refreshes (Eq. 4 outputs, cycle/calendar split)
    "wu",  # w_u dissemination, reception, staleness decay
    "fault",  # fault-injector firings and recovery-path outcomes
    "engine",  # run phases, refreshes, and other engine-level markers
    "perf",  # hot-path timings (degradation refresh wall time per pass)
)


def severity_level(name: str) -> int:
    """Numeric level of a severity name (raises on unknown names)."""
    try:
        return SEVERITIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown severity {name!r}; expected one of {sorted(SEVERITIES)}"
        ) from None


@dataclass(frozen=True)
class TraceEvent:
    """One structured observation published during a run.

    ``category`` buckets events for filtering; ``name`` is the specific
    event type (dotted, category-prefixed, e.g. ``packet.finished``);
    ``fields`` carries the event's typed payload.
    """

    time_s: float
    category: str
    name: str
    severity: str = "info"
    node_id: Optional[int] = None
    fields: Mapping[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """Flat dict form (the JSONL schema)."""
        record: Dict[str, object] = {
            "time_s": self.time_s,
            "category": self.category,
            "name": self.name,
            "severity": self.severity,
        }
        if self.node_id is not None:
            record["node_id"] = self.node_id
        if self.fields:
            record["fields"] = dict(self.fields)
        return record

    def to_json(self) -> str:
        """One JSONL line (no trailing newline)."""
        return json.dumps(self.to_dict(), sort_keys=True, default=str)

    @classmethod
    def from_dict(cls, record: Mapping[str, object]) -> "TraceEvent":
        """Rebuild an event from its JSONL dict form."""
        return cls(
            time_s=float(record["time_s"]),  # type: ignore[arg-type]
            category=str(record["category"]),
            name=str(record["name"]),
            severity=str(record.get("severity", "info")),
            node_id=(
                None if record.get("node_id") is None else int(record["node_id"])  # type: ignore[arg-type]
            ),
            fields=dict(record.get("fields", {})),  # type: ignore[arg-type]
        )


class JsonlSink:
    """Streams every event to a JSON-lines file.

    The sink owns the file handle; close it (or use the bus as a context
    manager) to flush buffered lines.
    """

    def __init__(
        self, path_or_handle: Union[str, TextIO], append: bool = False
    ) -> None:
        if isinstance(path_or_handle, str):
            mode = "a" if append else "w"
            self._handle: TextIO = open(path_or_handle, mode, encoding="utf-8")
            self._owns_handle = True
            self.path: Optional[str] = path_or_handle
        else:
            self._handle = path_or_handle
            self._owns_handle = False
            self.path = getattr(path_or_handle, "name", None)
        self.written = 0
        self._closed = False

    def __call__(self, event: TraceEvent) -> None:
        self._handle.write(event.to_json())
        self._handle.write("\n")
        self.written += 1

    def close(self) -> None:
        """Flush and (when the sink opened the file) close the handle.

        Idempotent: engines may close once on the error path and again
        in their normal teardown without a double-close error.
        """
        if self._closed:
            return
        self._closed = True
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()


class TraceBus:
    """The per-run event bus components publish to.

    Parameters
    ----------
    capacity:
        Ring-buffer bound; past it, the *oldest* events are evicted (the
        tail of a run is usually what is being debugged) and
        :attr:`dropped` counts the evictions.  Sinks still see every
        accepted event before eviction.
    categories:
        Iterable of category names to accept, or None for all of
        :data:`CATEGORIES`.
    min_severity:
        Events below this severity are filtered out before any work.
    sink:
        Optional callable (e.g. a :class:`JsonlSink`) receiving every
        accepted event.
    """

    def __init__(
        self,
        capacity: int = 65_536,
        categories: Optional[Iterable[str]] = None,
        min_severity: str = "debug",
        sink: Optional[Callable[[TraceEvent], None]] = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError("trace capacity must be >= 1")
        if categories is not None:
            unknown = set(categories) - set(CATEGORIES)
            if unknown:
                raise ConfigurationError(
                    f"unknown trace categories {sorted(unknown)}; "
                    f"expected a subset of {list(CATEGORIES)}"
                )
            self._categories: Optional[frozenset] = frozenset(categories)
        else:
            self._categories = None
        self._min_level = severity_level(min_severity)
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._sink = sink
        self.capacity = capacity
        self.dropped = 0
        self.emitted = 0

    # ------------------------------------------------------------- filtering

    def wants(self, category: str, severity: str = "debug") -> bool:
        """Cheap pre-check: would an event of this kind be accepted?

        Components guard *expensive payload construction* (e.g. copying
        per-window score lists) behind this, on top of the ``bus is not
        None`` guard that makes disabled runs free.
        """
        if SEVERITIES.get(severity, 0) < self._min_level:
            return False
        return self._categories is None or category in self._categories

    # -------------------------------------------------------------- emission

    def emit(
        self,
        time_s: float,
        category: str,
        name: str,
        severity: str = "info",
        node_id: Optional[int] = None,
        **fields: object,
    ) -> bool:
        """Publish one event; returns whether it was accepted."""
        if not self.wants(category, severity):
            return False
        event = TraceEvent(
            time_s=time_s,
            category=category,
            name=name,
            severity=severity,
            node_id=node_id,
            fields=fields,
        )
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)
        self.emitted += 1
        if self._sink is not None:
            self._sink(event)
        return True

    # ------------------------------------------------------------ inspection

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> List[TraceEvent]:
        """Snapshot of the retained (ring-buffered) events, oldest first."""
        return list(self._events)

    def select(
        self,
        category: Optional[str] = None,
        name: Optional[str] = None,
        node_id: Optional[int] = None,
    ) -> List[TraceEvent]:
        """Retained events matching every given filter."""
        return [
            e
            for e in self._events
            if (category is None or e.category == category)
            and (name is None or e.name == name)
            and (node_id is None or e.node_id == node_id)
        ]

    def close(self) -> None:
        """Close the sink, if it supports closing (idempotent)."""
        if self._sink is not None:
            closer = getattr(self._sink, "close", None)
            if closer is not None:
                closer()

    def __enter__(self) -> "TraceBus":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ---------------------------------------------------------- checkpointing

    def __getstate__(self) -> Dict[str, object]:
        """Pickle everything except the live sink handle.

        A file-backed sink records how many lines it had written; on
        resume, :func:`repro.checkpoint.resume` truncates the JSONL file
        back to that count and reattaches an append-mode sink so the
        resumed run's trace file stays byte-identical to an
        uninterrupted run's.
        """
        state = dict(self.__dict__)
        sink = state.pop("_sink", None)
        if isinstance(sink, JsonlSink) and sink.path is not None:
            state["_sink_written"] = sink.written
            state["_sink_path"] = sink.path
        else:
            state["_sink_written"] = None
            state["_sink_path"] = None
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._sink = None


# --------------------------------------------------------------- JSONL tools


def iter_jsonl(path: str) -> Iterator[TraceEvent]:
    """Stream the events of a JSONL trace file, in file order."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            yield TraceEvent.from_dict(json.loads(line))


def filter_events(
    events: Iterable[TraceEvent],
    categories: Optional[Sequence[str]] = None,
    node_id: Optional[int] = None,
    name_substring: Optional[str] = None,
    min_severity: str = "debug",
    since_s: Optional[float] = None,
    until_s: Optional[float] = None,
) -> Iterator[TraceEvent]:
    """Apply the ``repro trace`` command's filters to an event stream."""
    wanted = None if categories is None else set(categories)
    level = severity_level(min_severity)
    for event in events:
        if wanted is not None and event.category not in wanted:
            continue
        if node_id is not None and event.node_id != node_id:
            continue
        if name_substring is not None and name_substring not in event.name:
            continue
        if SEVERITIES.get(event.severity, 0) < level:
            continue
        if since_s is not None and event.time_s < since_s:
            continue
        if until_s is not None and event.time_s > until_s:
            continue
        yield event


def format_event(event: TraceEvent) -> str:
    """One human-readable line per event (the ``repro trace`` output)."""
    node = f"node={event.node_id}" if event.node_id is not None else ""
    payload = " ".join(
        f"{key}={_compact(value)}" for key, value in sorted(event.fields.items())
    )
    parts = [
        f"{event.time_s:14.3f}s",
        f"{event.severity:7s}",
        f"{event.name:28s}",
        f"{node:10s}",
        payload,
    ]
    return " ".join(parts).rstrip()


def _compact(value: object) -> str:
    """Render a payload value tersely (floats trimmed, lists abridged)."""
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, (list, tuple)):
        inner = ",".join(_compact(v) for v in value)
        return f"[{inner}]"
    return str(value)
