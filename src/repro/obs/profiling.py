"""Profiling hooks and the per-run manifest.

Every future performance PR is measured against the numbers collected
here: per-phase wall-clock timings (build / run / finalize), throughput
as simulated-seconds-per-wall-second, executed-event counts, and the
exact engine's peak event-queue depth.  The :class:`RunManifest` pins
the run's identity next to its results — config hash, seed, git
revision, engine, Python version — so a benchmark number can always be
traced back to the exact code and configuration that produced it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform
import subprocess
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from ..exceptions import ConfigurationError
from ..ioutil import atomic_write_text


class Profiler:
    """Named wall-clock phase timers for one run.

    Phases may be entered repeatedly (their durations accumulate) but
    not nested — the engines' build/run/finalize phases are strictly
    sequential, and overlapping attribution would double-count.
    """

    def __init__(self) -> None:
        self._timings: Dict[str, float] = {}
        self._active: Optional[str] = None
        self._started_at: float = 0.0

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a named phase: ``with profiler.phase("run"): ...``."""
        if self._active is not None:
            raise ConfigurationError(
                f"phase {name!r} started while {self._active!r} is running"
            )
        self._active = name
        self._started_at = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - self._started_at
            self._timings[name] = self._timings.get(name, 0.0) + elapsed
            self._active = None

    @property
    def timings_s(self) -> Dict[str, float]:
        """Accumulated seconds per completed phase."""
        return dict(self._timings)

    @property
    def total_s(self) -> float:
        """Sum of all phase durations."""
        return sum(self._timings.values())

    def __getstate__(self) -> Dict[str, object]:
        """Snapshot with any in-flight phase folded into its timing.

        Checkpoints are written from inside the engines' ``run`` phase;
        folding the elapsed time in (without mutating the live profiler)
        lets a resumed run re-enter the phase and keep accumulating.
        """
        timings = dict(self._timings)
        if self._active is not None:
            elapsed = time.perf_counter() - self._started_at
            timings[self._active] = timings.get(self._active, 0.0) + elapsed
        return {"_timings": timings, "_active": None, "_started_at": 0.0}


def config_hash(config: object) -> str:
    """Stable short hash identifying a :class:`SimulationConfig`.

    Hashes the sorted-key JSON of the dataclass tree (enums and other
    non-JSON leaves serialize via ``str``), so two configs hash equal
    iff their field values are equal — the manifest's "same run?" key.
    """
    if dataclasses.is_dataclass(config):
        payload = dataclasses.asdict(config)
    else:
        payload = config  # pragma: no cover - convenience for plain dicts
    if isinstance(payload, dict):
        # Observability settings never alter simulation results —
        # checkpoint cadence/location (a resumed run in a fresh
        # checkpoint directory hashes equal to its reference run) and
        # tracing (bit-identical metrics with or without a trace sink,
        # so a traced service run hashes equal to the plain CLI run).
        payload = {
            key: value
            for key, value in payload.items()
            if key
            not in (
                "checkpoint_every_s",
                "checkpoint_dir",
                "trace",
                "trace_path",
                "trace_categories",
                # Retention-only: which nodes keep full history never
                # changes simulation results.
                "sample_nodes",
            )
        }
        if "shards" in payload:
            # The shard count only packs gateway cells into worker
            # processes; any count yields identical results.  Sharded
            # vs. unsharded *is* a semantic switch (per-cell contention
            # domains), so only that bit enters the hash.
            payload["shards"] = payload["shards"] is not None
    text = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """The repository's HEAD commit, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5.0,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    revision = out.stdout.strip()
    return revision if out.returncode == 0 and revision else None


@dataclass
class RunManifest:
    """Everything needed to attribute one run's results.

    Written as JSON next to the run's trace/metrics outputs; also
    embedded in the ``repro simulate --json`` machine-readable summary.
    """

    engine: str
    seed: int
    config_hash: str
    node_count: int
    duration_s: float
    policy: str = ""
    git_rev: Optional[str] = None
    python: str = field(default_factory=platform.python_version)
    #: Wall-clock seconds per phase (build / run / finalize).
    phase_timings_s: Dict[str, float] = field(default_factory=dict)
    #: Total wall-clock time across phases.
    wall_s: float = 0.0
    #: Simulated seconds advanced per wall-clock second (throughput).
    sim_s_per_wall_s: float = 0.0
    #: Events executed (heap events for both engines).
    events_executed: int = 0
    #: Peak simultaneous entries in the event queue / sweep heap.
    peak_queue_depth: int = 0
    #: Trace-bus accounting, when tracing was enabled.
    trace_events: int = 0
    trace_dropped: int = 0
    trace_path: Optional[str] = None

    def finalize(self, profiler: Profiler, simulated_s: float) -> None:
        """Fold a profiler's timings and derive throughput."""
        self.phase_timings_s = profiler.timings_s
        self.wall_s = profiler.total_s
        run_s = self.phase_timings_s.get("run", self.wall_s)
        self.sim_s_per_wall_s = simulated_s / run_s if run_s > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (the JSON schema)."""
        return dataclasses.asdict(self)

    def to_json(self, indent: int = 2) -> str:
        """Serialized manifest."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write(self, path: str) -> None:
        """Write the manifest JSON to ``path`` atomically."""
        atomic_write_text(path, self.to_json() + "\n")
