"""Profiling hooks and the per-run manifest.

Every future performance PR is measured against the numbers collected
here: per-phase wall-clock timings (build / run / finalize), throughput
as simulated-seconds-per-wall-second, executed-event counts, and the
exact engine's peak event-queue depth.  The :class:`RunManifest` pins
the run's identity next to its results — config hash, seed, git
revision, engine, Python version — so a benchmark number can always be
traced back to the exact code and configuration that produced it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform
import subprocess
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from ..exceptions import ConfigurationError
from ..ioutil import atomic_write_text


class HotLoopProfiler:
    """Per-kernel wall/call counters for the hot-loop kernel layer.

    The kernel layer (:mod:`repro.kernels`) reports every kernel
    invocation here when profiling is enabled; when disabled (the
    default) the accounting short-circuits to a single attribute check,
    keeping production runs free of timing overhead.  Counters
    accumulate across engines and sweeps within one process, so the
    ranked table of ``repro simulate --profile-hot`` reflects the whole
    run.
    """

    def __init__(self) -> None:
        self.enabled = False
        #: kernel name → [calls, wall_seconds].
        self._stats: Dict[str, list] = {}

    def enable(self) -> None:
        """Turn on per-kernel timing (idempotent)."""
        self.enabled = True

    def disable(self) -> None:
        """Turn timing back off; accumulated counters are kept."""
        self.enabled = False

    def reset(self) -> None:
        """Drop all accumulated counters."""
        self._stats.clear()

    def add(self, kernel: str, wall_s: float, calls: int = 1) -> None:
        """Fold one (or ``calls``) kernel invocations into the counters."""
        entry = self._stats.get(kernel)
        if entry is None:
            entry = self._stats[kernel] = [0, 0.0]
        entry[0] += calls
        entry[1] += wall_s

    @contextmanager
    def span(self, kernel: str) -> Iterator[None]:
        """Time one block as a kernel invocation (no-op when disabled)."""
        if not self.enabled:
            yield
            return
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add(kernel, time.perf_counter() - started)

    @property
    def stats(self) -> Dict[str, Dict[str, float]]:
        """``{kernel: {"calls": n, "wall_s": s}}`` snapshot."""
        return {
            name: {"calls": entry[0], "wall_s": entry[1]}
            for name, entry in self._stats.items()
        }

    def ranked(self) -> list:
        """``(kernel, calls, wall_s)`` rows, slowest first."""
        rows = [
            (name, entry[0], entry[1]) for name, entry in self._stats.items()
        ]
        rows.sort(key=lambda row: row[2], reverse=True)
        return rows

    def render_table(self, backend: str) -> str:
        """The ranked per-kernel table ``--profile-hot`` prints."""
        rows = self.ranked()
        lines = [f"hot-loop kernels (backend: {backend})"]
        if not rows:
            lines.append("  (no kernel invocations recorded)")
            return "\n".join(lines)
        total = sum(row[2] for row in rows) or 1.0
        header = f"  {'kernel':<28} {'calls':>12} {'wall_s':>10} {'share':>7}"
        lines.append(header)
        for name, calls, wall in rows:
            lines.append(
                f"  {name:<28} {calls:>12} {wall:>10.3f} {wall / total:>6.1%}"
            )
        return "\n".join(lines)

    def publish(self, registry, backend: str) -> None:
        """Export the counters through a :class:`MetricsRegistry`.

        Families: ``repro_kernel_calls_total{kernel=...}``,
        ``repro_kernel_wall_seconds_total{kernel=...}`` and the
        ``repro_kernel_backend_info{backend=...}`` info gauge.
        """
        registry.gauge(
            "kernel_backend_info",
            "Selected hot-loop kernel backend (value is always 1)",
            labels={"backend": backend},
        ).set(1.0)
        for name, entry in self._stats.items():
            registry.counter(
                "kernel_calls_total",
                "Hot-loop kernel invocations",
                labels={"kernel": name},
            ).inc(entry[0])
            registry.counter(
                "kernel_wall_seconds_total",
                "Wall-clock seconds spent inside hot-loop kernels",
                labels={"kernel": name},
            ).inc(entry[1])


#: Process-wide hot-loop profiler the kernel layer reports into.
_HOT_PROFILER = HotLoopProfiler()


def hot_profiler() -> HotLoopProfiler:
    """The process-wide :class:`HotLoopProfiler` singleton."""
    return _HOT_PROFILER


class Profiler:
    """Named wall-clock phase timers for one run.

    Phases may be entered repeatedly (their durations accumulate) but
    not nested — the engines' build/run/finalize phases are strictly
    sequential, and overlapping attribution would double-count.
    """

    def __init__(self) -> None:
        self._timings: Dict[str, float] = {}
        self._active: Optional[str] = None
        self._started_at: float = 0.0

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a named phase: ``with profiler.phase("run"): ...``."""
        if self._active is not None:
            raise ConfigurationError(
                f"phase {name!r} started while {self._active!r} is running"
            )
        self._active = name
        self._started_at = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - self._started_at
            self._timings[name] = self._timings.get(name, 0.0) + elapsed
            self._active = None

    @property
    def timings_s(self) -> Dict[str, float]:
        """Accumulated seconds per completed phase."""
        return dict(self._timings)

    @property
    def total_s(self) -> float:
        """Sum of all phase durations."""
        return sum(self._timings.values())

    def __getstate__(self) -> Dict[str, object]:
        """Snapshot with any in-flight phase folded into its timing.

        Checkpoints are written from inside the engines' ``run`` phase;
        folding the elapsed time in (without mutating the live profiler)
        lets a resumed run re-enter the phase and keep accumulating.
        """
        timings = dict(self._timings)
        if self._active is not None:
            elapsed = time.perf_counter() - self._started_at
            timings[self._active] = timings.get(self._active, 0.0) + elapsed
        return {"_timings": timings, "_active": None, "_started_at": 0.0}


def config_hash(config: object) -> str:
    """Stable short hash identifying a :class:`SimulationConfig`.

    Hashes the sorted-key JSON of the dataclass tree (enums and other
    non-JSON leaves serialize via ``str``), so two configs hash equal
    iff their field values are equal — the manifest's "same run?" key.
    """
    if dataclasses.is_dataclass(config):
        payload = dataclasses.asdict(config)
    else:
        payload = config  # pragma: no cover - convenience for plain dicts
    if isinstance(payload, dict):
        # Observability settings never alter simulation results —
        # checkpoint cadence/location (a resumed run in a fresh
        # checkpoint directory hashes equal to its reference run) and
        # tracing (bit-identical metrics with or without a trace sink,
        # so a traced service run hashes equal to the plain CLI run).
        payload = {
            key: value
            for key, value in payload.items()
            if key
            not in (
                "checkpoint_every_s",
                "checkpoint_dir",
                "trace",
                "trace_path",
                "trace_categories",
                # Retention-only: which nodes keep full history never
                # changes simulation results.
                "sample_nodes",
                # The exact engine's batched event drain executes the
                # same events in the same order with the same RNG
                # draws; on/off never changes simulation results.
                "exact_batched",
            )
        }
        if "shards" in payload:
            # The shard count only packs gateway cells into worker
            # processes; any count yields identical results.  Sharded
            # vs. unsharded *is* a semantic switch (per-cell contention
            # domains), so only that bit enters the hash.
            payload["shards"] = payload["shards"] is not None
    text = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """The repository's HEAD commit, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5.0,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    revision = out.stdout.strip()
    return revision if out.returncode == 0 and revision else None


@dataclass
class RunManifest:
    """Everything needed to attribute one run's results.

    Written as JSON next to the run's trace/metrics outputs; also
    embedded in the ``repro simulate --json`` machine-readable summary.
    """

    engine: str
    seed: int
    config_hash: str
    node_count: int
    duration_s: float
    policy: str = ""
    git_rev: Optional[str] = None
    python: str = field(default_factory=platform.python_version)
    #: Wall-clock seconds per phase (build / run / finalize).
    phase_timings_s: Dict[str, float] = field(default_factory=dict)
    #: Total wall-clock time across phases.
    wall_s: float = 0.0
    #: Simulated seconds advanced per wall-clock second (throughput).
    sim_s_per_wall_s: float = 0.0
    #: Events executed (heap events for both engines).
    events_executed: int = 0
    #: Peak simultaneous entries in the event queue / sweep heap.
    peak_queue_depth: int = 0
    #: Trace-bus accounting, when tracing was enabled.
    trace_events: int = 0
    trace_dropped: int = 0
    trace_path: Optional[str] = None

    def finalize(self, profiler: Profiler, simulated_s: float) -> None:
        """Fold a profiler's timings and derive throughput."""
        self.phase_timings_s = profiler.timings_s
        self.wall_s = profiler.total_s
        run_s = self.phase_timings_s.get("run", self.wall_s)
        self.sim_s_per_wall_s = simulated_s / run_s if run_s > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (the JSON schema)."""
        return dataclasses.asdict(self)

    def to_json(self, indent: int = 2) -> str:
        """Serialized manifest."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write(self, path: str) -> None:
        """Write the manifest JSON to ``path`` atomically."""
        atomic_write_text(path, self.to_json() + "\n")
