"""Incremental JSONL tailing (``tail -f`` for trace and progress files).

Both consumers of a growing JSONL file — the ``repro serve`` events
endpoint and ``repro trace --follow`` — read through one stateful
:class:`JsonlTailer`: it remembers its byte offset, returns only the
*complete* lines appended since the last poll, and recovers from the
file being truncated or replaced (checkpoint resume rewinds a trace
file with :func:`repro.ioutil.atomic_write_bytes`, which swaps the
inode out from under a reader).

A line is complete once its ``\\n`` has been written, so a reader never
sees the torn tail of an in-flight ``write()``.  The helpers tolerate
the file not existing yet: a tailer can be pointed at the path a run
*will* write before the run has opened it.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Iterator, List, Optional

from .trace import TraceEvent


class JsonlTailer:
    """Stateful incremental reader of one growing JSONL file.

    ``poll()`` returns the complete lines appended since the previous
    call (without trailing newlines).  Truncation or replacement is
    detected through shrinking size / changed inode, after which reading
    restarts from the beginning of the new content.
    """

    def __init__(self, path: str, from_start: bool = True) -> None:
        self.path = path
        self.offset = 0
        self._inode: Optional[int] = None
        if not from_start:
            try:
                stat = os.stat(path)
                self.offset = stat.st_size
                self._inode = stat.st_ino
            except OSError:
                pass
        self._pending = b""

    def poll(self) -> List[str]:
        """Complete lines appended since the last poll (may be empty)."""
        try:
            stat = os.stat(self.path)
        except OSError:
            return []
        if self._inode is not None and stat.st_ino != self._inode:
            # Replaced (atomic rewrite): start over on the new file.
            self.offset = 0
            self._pending = b""
        elif stat.st_size < self.offset:
            # Truncated in place.
            self.offset = 0
            self._pending = b""
        self._inode = stat.st_ino
        if stat.st_size == self.offset:
            return []
        try:
            with open(self.path, "rb") as handle:
                handle.seek(self.offset)
                chunk = handle.read()
        except OSError:
            return []
        self.offset += len(chunk)
        data = self._pending + chunk
        *complete, rest = data.split(b"\n")
        self._pending = rest
        # Keep the offset accounting simple: the offset tracks bytes
        # consumed from the file; the partial line lives in _pending.
        return [
            line.decode("utf-8", errors="replace").rstrip("\r")
            for line in complete
            if line.strip()
        ]


def parse_event_line(line: str) -> Optional[TraceEvent]:
    """One JSONL line as a :class:`TraceEvent`, or None if malformed."""
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(record, dict) or "time_s" not in record:
        return None
    try:
        return TraceEvent.from_dict(record)
    except (KeyError, TypeError, ValueError):
        return None


def follow_lines(
    path: str,
    poll_interval_s: float = 0.2,
    stop: Optional[Callable[[], bool]] = None,
    from_start: bool = True,
) -> Iterator[str]:
    """Yield JSONL lines as they are appended (``tail -f`` semantics).

    Polls ``path`` every ``poll_interval_s``; between polls the optional
    ``stop`` predicate is consulted, and once it returns True the
    iterator drains whatever is already on disk and ends.  Without a
    ``stop`` the iterator only ends when the consumer stops pulling.
    """
    tailer = JsonlTailer(path, from_start=from_start)
    while True:
        lines = tailer.poll()
        for line in lines:
            yield line
        if stop is not None and stop():
            for line in tailer.poll():  # final drain after the stop
                yield line
            return
        if not lines:
            time.sleep(poll_interval_s)


def follow_events(
    path: str,
    poll_interval_s: float = 0.2,
    stop: Optional[Callable[[], bool]] = None,
    from_start: bool = True,
) -> Iterator[TraceEvent]:
    """:func:`follow_lines`, parsed into events (malformed lines skipped)."""
    for line in follow_lines(
        path, poll_interval_s=poll_interval_s, stop=stop, from_start=from_start
    ):
        event = parse_event_line(line)
        if event is not None:
            yield event
