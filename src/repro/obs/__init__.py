"""Observability: structured tracing, metrics, and profiling (``repro.obs``).

Three cooperating pieces, shared by both simulation engines:

* :mod:`repro.obs.trace` — a zero-overhead-when-disabled event bus
  (:class:`TraceBus`) onto which the engines, the battery lifespan-aware
  MAC, the degradation service, the battery model, the software-defined
  switch, and the fault injector publish typed :class:`TraceEvent`
  records; bounded ring buffer plus an optional JSONL sink.
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and weighted histograms with Prometheus-text and JSON exports.
* :mod:`repro.obs.profiling` — per-phase wall-clock timers and the
  :class:`RunManifest` (config hash, seed, git revision, throughput)
  written next to a run's results.

Enable from a config (``SimulationConfig(trace=True, trace_path=...)``),
from the CLI (``repro simulate --trace --trace-out run.jsonl``), or
programmatically by passing an :class:`Observability` to an engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profiling import (
    HotLoopProfiler,
    Profiler,
    RunManifest,
    config_hash,
    git_revision,
    hot_profiler,
)
from .tail import JsonlTailer, follow_events, follow_lines, parse_event_line
from .trace import (
    CATEGORIES,
    SEVERITIES,
    JsonlSink,
    TraceBus,
    TraceEvent,
    filter_events,
    format_event,
    iter_jsonl,
    severity_level,
)


@dataclass
class Observability:
    """One run's instrumentation bundle: trace bus, metrics, profiler.

    ``trace`` may be None — metrics and profiling stay active while
    event tracing stays completely off the hot path.
    """

    trace: Optional[TraceBus] = None
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    profiler: Profiler = field(default_factory=Profiler)

    @classmethod
    def create(
        cls,
        trace_path: Optional[str] = None,
        categories: Optional[Iterable[str]] = None,
        capacity: int = 65_536,
        min_severity: str = "debug",
    ) -> "Observability":
        """Build a bundle with tracing enabled (and a JSONL sink if asked)."""
        sink = JsonlSink(trace_path) if trace_path is not None else None
        bus = TraceBus(
            capacity=capacity,
            categories=categories,
            min_severity=min_severity,
            sink=sink,
        )
        return cls(trace=bus)

    def close(self) -> None:
        """Flush and close the trace sink, when one is attached."""
        if self.trace is not None:
            self.trace.close()


__all__ = [
    "CATEGORIES",
    "Counter",
    "Gauge",
    "Histogram",
    "HotLoopProfiler",
    "hot_profiler",
    "JsonlSink",
    "JsonlTailer",
    "MetricsRegistry",
    "Observability",
    "Profiler",
    "RunManifest",
    "SEVERITIES",
    "TraceBus",
    "TraceEvent",
    "config_hash",
    "filter_events",
    "follow_events",
    "follow_lines",
    "format_event",
    "git_revision",
    "iter_jsonl",
    "parse_event_line",
    "severity_level",
]
