"""Legacy setup shim (the environment has no `wheel` package, so the
PEP-517 editable path is unavailable offline)."""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
)
